#include "core/shape.h"

#include <algorithm>

#include "core/inspect.h"

namespace gfsl::core {

ShapeStats measure_shape(const Gfsl& g) {
  GfslInspector insp(g);
  ShapeStats s;
  s.levels.resize(static_cast<std::size_t>(g.max_levels()));

  for (int l = 0; l < g.max_levels(); ++l) {
    LevelShape& ls = s.levels[static_cast<std::size_t>(l)];
    const auto chain = insp.level_chain(l, nullptr);
    double fill_sum = 0.0;
    double fill_min = 1e30;
    double fill_max = 0.0;
    for (const auto& ch : chain) {
      if (ch.lock == kZombie) {
        ++ls.zombie_chunks;
        continue;
      }
      ++ls.live_chunks;
      std::uint64_t user = 0;
      for (const KV kv : ch.data) {
        if (kv_key(kv) != KEY_NEG_INF) ++user;
      }
      ls.keys += user;
      const auto fill = static_cast<double>(ch.data.size());
      fill_sum += fill;
      fill_min = std::min(fill_min, fill);
      fill_max = std::max(fill_max, fill);
    }
    if (ls.live_chunks > 0) {
      ls.avg_fill = fill_sum / static_cast<double>(ls.live_chunks);
      ls.min_fill = fill_min;
      ls.max_fill = fill_max;
    }
    s.live_chunks += ls.live_chunks;
    s.zombie_chunks += ls.zombie_chunks;
    if (ls.keys > 0) s.height = l;
  }

  s.total_keys = s.levels[0].keys;
  // Average user keys per live bottom chunk, counting only chunks that hold
  // data (the head chunk carries just -inf when the first split has not
  // reached it).
  if (s.levels[0].live_chunks > 0) {
    s.avg_keys_per_chunk = static_cast<double>(s.levels[0].keys) /
                           static_cast<double>(s.levels[0].live_chunks);
  }
  if (s.levels.size() > 1 && s.levels[1].keys > 0) {
    s.fanout = static_cast<double>(s.levels[0].keys) /
               static_cast<double>(s.levels[1].keys);
  }
  return s;
}

}  // namespace gfsl::core
