// Crash tolerance: intent publication, bounded-spin backoff, lease probing,
// and the cooperative repair of a dead team's half-done mutations.
//
// The protocol (see DESIGN.md §Fault tolerance):
//
//   1. Every lock acquisition stamps the holder's lease word into the LOCK
//      entry (try_lock, gfsl.cpp).
//   2. Every destructive span publishes an intent descriptor (intent.h)
//      before its first destructive store and clears it after its last.
//   3. A team spinning on a held lock probes the owner's lease; when it has
//      expired (an explicit death certificate — never a timeout guess), the
//      spinner claims the dead team's intent, repairs the mutation from the
//      chunk state alone, releases the dead locks, and retries.
//   4. A quiescent medic sweep (recover_all_expired) catches whatever no
//      survivor happened to spin on.
//
// Repairs never publish intents of their own: a chunk must be referenced by
// at most one claimable intent at a time, and the owner-precise guards
// (locked_by / release_if_owned) keep a stale claim chain from ever touching
// a chunk that was already released and re-acquired by the living.
#include "core/gfsl.h"

#include <algorithm>
#include <array>
#include <thread>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

void Gfsl::publish_intent(Team& team, IntentKind kind, Key k, ChunkRef a,
                          ChunkRef b, ChunkRef fresh) {
  const std::uint32_t mine = lease_word(team);
  if (mine == 0) return;  // anonymous team: legacy semantics, no intents
  IntentSlot& s = intents_[team.id()];
  sync_point(team);  // a kill here leaves the previous (cleared) intent
  s.owner.store(mine, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
  s.key.store(k, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.fresh.store(fresh, std::memory_order_relaxed);
  s.word.store(mine, std::memory_order_release);
  // The intent IS the write-ahead record: it must be durable before the
  // span's first destructive store, or recovery has nothing to replay.
  persist_point();
  team.step();
}

void Gfsl::clear_intent(Team& team) {
  const std::uint32_t mine = lease_word(team);
  if (mine == 0) return;
  intents_[team.id()].word.store(0, std::memory_order_release);
  persist_point();
  team.step();
}

void Gfsl::backoff(Team& team, int round) {
  team.metric(obs::kBackoffRounds);
  if (sched_ != nullptr && sched_->mode() != sched::StepScheduler::Mode::Free) {
    // Under a seeded schedule a backoff round is exactly one yield point:
    // the scheduler decides who runs next, so the "wait" is deterministic.
    sync_point(team);
    return;
  }
  // Free-running: exponential, saturating pause loop.  One OS yield gives a
  // descheduled holder's thread a chance to run; the busy tail spaces out
  // re-reads of the contended line.
  std::this_thread::yield();
  const int iters = 1 << std::min(round, 12);
  team.metric(obs::kBackoffSpinIters, static_cast<std::uint64_t>(iters));
  volatile int sink = 0;
  for (int i = 0; i < iters; ++i) sink = sink + 1;
}

bool Gfsl::locked_by(ChunkRef ref, std::uint32_t owner_word) const {
  if (ref == NULL_CHUNK) return false;
  const KV e = arena_.entries(ref)[arena_.lock_slot()].load(
      std::memory_order_acquire);
  return e == make_lock_entry(kLocked, owner_word);
}

bool Gfsl::release_if_owned(Team& team, ChunkRef ref,
                            std::uint32_t owner_word) {
  if (ref == NULL_CHUNK || owner_word == 0 || !leases_->expired(owner_word)) {
    return false;
  }
  KV expected = make_lock_entry(kLocked, owner_word);
  sync_point(team);
  // The release below publishes "unlocked", which must imply a current seal
  // (the dead owner's mutation was already repaired, or never started).
  // Stamp while the lock word still names the dead owner — the contents are
  // frozen under its held lock, so the hash is computed over a stable image.
  if (locked_by(ref, owner_word)) stamp_seal(team, ref);
  mem_->atomic_rmw(arena_.entry_address(ref, arena_.lock_slot()));
  const bool ok = arena_.entry(ref, arena_.lock_slot())
                      .compare_exchange_strong(
                          expected, make_lock_entry(kUnlocked),
                          std::memory_order_acq_rel, std::memory_order_acquire);
  team.step();
  if (ok) {
    team.metric(obs::kLockSteals);
    team.record(simt::TraceEvent::kLockStolen, ref, owner_word);
  }
  return ok;
}

bool Gfsl::maybe_recover(Team& team, ChunkRef ref, KV lock_kv) {
  if (leases_ == nullptr || lock_entry_state(lock_kv) != kLocked) return false;
  const std::uint32_t w = lock_entry_owner(lock_kv);
  if (w == 0 || !leases_->expired(w)) return false;
  team.metric(obs::kLeaseExpiries);
  team.record(simt::TraceEvent::kLeaseExpired, ref, w);
  // A dead team's epoch pin would wedge reclamation for everyone.  Guard on
  // crashed(id) — not just the expired word — so a revived id's *live* pin
  // is never dropped; then take over its limbo so the retirees drain
  // through our own reclaim passes.
  const int dead_id = sched::LeaseTable::word_team(w);
  if (epochs_ != nullptr && leases_->crashed(dead_id)) {
    epochs_->force_quiesce(dead_id);
    epochs_->adopt(dead_id, team.id());
  }
  IntentSlot* slot = intent_of(dead_id);
  if (slot != nullptr) {
    const std::uint32_t iw = slot->word.load(std::memory_order_acquire);
    if (iw != 0) {
      // The dead team died inside a destructive span (or a recoverer died
      // mid-repair: same path, the repair is idempotent).  A live claimant's
      // word means the repair is in progress elsewhere — back off.
      if (!leases_->expired(iw)) return false;
      return recover_intent(team, *slot, iw);
    }
  }
  // No intent published: every destructive store lies inside an intent span,
  // so the chunk's contents are consistent — steal the lock outright.
  return release_if_owned(team, ref, w);
}

bool Gfsl::recover_intent(Team& team, IntentSlot& slot, std::uint32_t iw) {
  const std::uint32_t mine = lease_word(team);
  if (mine == 0) return false;  // anonymous teams cannot claim
  std::uint32_t expect = iw;
  sync_point(team);
  const bool claimed = slot.word.compare_exchange_strong(
      expect, mine, std::memory_order_acq_rel, std::memory_order_acquire);
  team.step();
  if (!claimed) return false;  // another recoverer won the race

  // Version revision for whatever the repair re-stamps: inherit the medic's
  // active commit context (it may be mid-operation or mid-batch) or open a
  // fresh one.  A repaired mutation linearizes at repair time — the dead
  // team's op never returned, so no caller observed an earlier commit.
  CommitScope commit(*this, team);

  const std::uint32_t owner = slot.owner.load(std::memory_order_relaxed);
  const std::uint32_t kind_raw = slot.kind.load(std::memory_order_relaxed);
  const auto kind = static_cast<IntentKind>(kind_raw);
  const Key k = slot.key.load(std::memory_order_relaxed);
  const ChunkRef a = slot.a.load(std::memory_order_relaxed);
  const ChunkRef b = slot.b.load(std::memory_order_relaxed);
  const ChunkRef fresh = slot.fresh.load(std::memory_order_relaxed);

  // An intent slot adopted from a persisted (or damaged) image is untrusted
  // input: a ref outside the pool would index the repairs out of bounds, and
  // an unknown kind has no defined replay.  Such an intent is dropped — the
  // arena lock sweep still releases whatever the dead team held in-pool.
  const auto in_pool = [this](ChunkRef r) {
    return r == NULL_CHUNK || r < arena_.capacity();
  };
  if (!in_pool(a) || !in_pool(b) || !in_pool(fresh) ||
      kind_raw > static_cast<std::uint32_t>(IntentKind::kDownSwing)) {
    team.metric(obs::kRecoveryRollBack);
    slot.word.store(0, std::memory_order_release);
    return true;
  }

  bool forward = true;
  if (owner != 0 && leases_->expired(owner)) {
    switch (kind) {
      case IntentKind::kInsertShift:
        if (locked_by(a, owner)) forward = repair_insert_shift(team, a, k);
        break;
      case IntentKind::kEraseShift:
        if (locked_by(a, owner)) forward = repair_erase_shift(team, a, k);
        break;
      case IntentKind::kSplit:
        if (locked_by(a, owner)) forward = repair_split(team, a, fresh);
        break;
      case IntentKind::kMerge:
        forward = repair_merge(team, a, b, k, owner);
        break;
      case IntentKind::kDownSwing:  // the swing is one atomic write: nothing
      case IntentKind::kNone:       // to repair, only locks to release
        break;
    }
    release_if_owned(team, a, owner);
    release_if_owned(team, b, owner);
    release_if_owned(team, fresh, owner);
  }
  team.record(simt::TraceEvent::kRecovery,
              static_cast<std::uint64_t>(kind), forward ? 1 : 0);
  team.metric(forward ? obs::kRecoveryRollForward : obs::kRecoveryRollBack);
  slot.word.store(0, std::memory_order_release);
  return true;
}

void Gfsl::dedup_shift(Team& team, ChunkRef ref) {
  // A partial shift (either direction) leaves exactly one adjacent
  // duplicated entry; collapsing it by shifting everything to its right one
  // slot left both *resumes* a partial erase shift and *undoes* a partial
  // insert shift.  Keys in a chunk are distinct, so a full-KV adjacent
  // duplicate can only be shift debris.  Writes ascend, like the erase shift
  // itself: every overwritten value has a live copy one slot to the left.
  const LaneVec<KV> kv = read_chunk(team, ref);
  const int dsz = team.dsize();
  int dup = -1;
  int last = -1;
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(kv[i])) {
      if (dup < 0 && i + 1 < dsz && kv[i] == kv[i + 1]) dup = i;
      last = i;
    }
  }
  if (dup < 0) return;  // no debris: the span never started or had finished
  for (int i = dup + 2; i <= last; ++i) {
    atomic_entry_write(team, ref, i - 1, kv[i]);
  }
  atomic_entry_write(team, ref, last, KV_EMPTY);
}

bool Gfsl::repair_insert_shift(Team& team, ChunkRef ref, Key k) {
  const LaneVec<KV> kv = read_chunk(team, ref);
  if (chunk_contains(team, kv, k)) return true;  // key landed: shift complete
  dedup_shift(team, ref);  // collapse the partial shift's duplicate, if any
  Value v = 0;
  if (snaps_ != nullptr && is_bottom(ref) &&
      snaps_->has_live_record(ref, k, &v)) {
    // The dead team stamped k's version record before its first entry write,
    // so a snapshot reader may already have resolved k through the chain.
    // Rolling back would un-happen an observed insert; roll FORWARD instead:
    // the chunk is back in its pre-insert shape, so re-run the insert shift
    // with the record's value (execute_insert's own stamp is idempotent).
    const LaneVec<KV> cur = read_chunk(team, ref);
    execute_insert(team, ref, cur, k, v);
    return true;
  }
  // No record: the death hit between intent publish and stamp, before any
  // entry write — no reader can have seen k.  Roll back.
  return false;
}

bool Gfsl::repair_erase_shift(Team& team, ChunkRef ref, Key k) {
  const LaneVec<KV> kv = read_chunk(team, ref);
  if (chunk_contains(team, kv, k)) {
    // The shift never started (at most the max field was pre-lowered, which
    // is idempotent to redo): re-stamp the erase record (the death may have
    // hit between intent publish and stamp; mark_erased replays as a no-op
    // when the stamp landed) and re-execute the removal.
    Value v = 0;
    for (int i = 0; i < team.dsize(); ++i) {
      if (!kv_is_empty(kv[i]) && kv_key(kv[i]) == k) v = kv_value(kv[i]);
    }
    stamp_erase(team, ref, k, v);
    const bool is_last = max_of(team, kv) == KEY_INF;
    execute_remove_no_merge(team, kv, ref, k, is_last);
  } else {
    // Entries already moved, and the stamp precedes the first entry write:
    // k's erase record is in place.  Resume the shift.
    dedup_shift(team, ref);  // resume: collapse the duplicate, if any
  }
  return true;
}

bool Gfsl::repair_split(Team& team, ChunkRef ref, ChunkRef fresh) {
  // The split is published iff ref's NEXT already names the fresh chunk (the
  // publish is the span's first destructive store).  Unpublished: nothing
  // destructive happened; the fresh chunk is unreachable and merely leaks
  // until compact().  Published: the fresh chunk was fully populated before
  // publication, so all that remains is clearing the moved tail — entries
  // above the (already lowered) max — highest first, as the split would.
  const LaneVec<KV> kv = read_chunk(team, ref);
  if (next_of(team, kv) != fresh) return false;
  const Key maxk = max_of(team, kv);
  for (int i = team.dsize() - 1; i >= 0; --i) {
    if (!kv_is_empty(kv[i]) && kv_key(kv[i]) > maxk) {
      atomic_entry_write(team, ref, i, KV_EMPTY);
    }
  }
  return true;
}

bool Gfsl::repair_merge(Team& team, ChunkRef enc_ref, ChunkRef next_ref,
                        Key k, std::uint32_t owner) {
  // Roll forward.  If the enclosing chunk is already a zombie, the merge's
  // destructive part finished.  Otherwise both chunks are still locked by
  // the dead owner, and a partial merge copy preserves every surviving
  // entry somewhere in the pair — so the sorted distinct union of
  // (enclosing minus k) and the successor's current contents *is* the
  // intended merged array.  Rewrite the successor right-to-left (the
  // traversal-safe order of the original copy), then zombify the enclosing
  // chunk.
  if (!locked_by(enc_ref, owner) || !locked_by(next_ref, owner)) return true;
  const LaneVec<KV> ekv = read_chunk(team, enc_ref);
  const LaneVec<KV> nkv = read_chunk(team, next_ref);
  const int dsz = team.dsize();

  // Replay the version bookkeeping first, exactly as the merge orders it
  // (erase.cpp): stamp k's erase on the donor, then copy the donor's chain
  // into the receiver.  Both replay idempotently; the zombify below is what
  // makes the receiver the sole resolution point for the donor's keys, so
  // the history must be there before it.
  if (snaps_ != nullptr && is_bottom(enc_ref)) {
    Value v = 0;
    for (int i = 0; i < dsz; ++i) {
      if (!kv_is_empty(ekv[i]) && kv_key(ekv[i]) == k) v = kv_value(ekv[i]);
    }
    stamp_erase(team, enc_ref, k, v);
    copy_version_records(team, enc_ref, next_ref, KEY_NEG_INF,
                         max_of(team, ekv), /*level=*/0);
  }

  std::array<KV, 64> all{};
  int n = 0;
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(ekv[i]) && kv_key(ekv[i]) != k) all[n++] = ekv[i];
  }
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(nkv[i])) all[n++] = nkv[i];
  }
  std::sort(all.begin(), all.begin() + n,
            [](KV x, KV y) { return kv_key(x) < kv_key(y); });
  LaneVec<KV> merged(KV_EMPTY);
  int m = 0;
  for (int i = 0; i < n; ++i) {
    if (m == 0 || kv_key(merged[m - 1]) != kv_key(all[i])) merged[m++] = all[i];
  }

  for (int i = m - 1; i >= 0; --i) {
    if (nkv[i] != merged[i]) {
      atomic_entry_write(team, next_ref, i, merged[i]);
    } else {
      team.step();
    }
  }
  mark_zombie(team, enc_ref);
  return true;
}

int Gfsl::recover_all_expired(Team& team) {
  if (leases_ == nullptr) return 0;
  EpochScope epoch(*this, team);
  // Quiesce every crashed team's epoch state first: clear pins that would
  // wedge the global epoch forever and adopt their limbo lists, so the
  // orphaned retirees drain through the medic's own reclaim passes.
  if (epochs_ != nullptr) {
    for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
      if (leases_->crashed(id)) {
        epochs_->force_quiesce(id);
        epochs_->adopt(id, team.id());
      }
    }
  }
  // Repair every claimable intent first, so data repairs precede releases.
  for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
    IntentSlot& slot = intents_[id];
    const std::uint32_t iw = slot.word.load(std::memory_order_acquire);
    if (iw != 0 && leases_->expired(iw)) recover_intent(team, slot, iw);
  }
  // Then sweep the arena for remaining dead-owned locks: spans that never
  // published, born-locked chunks that were never reached, bottom locks
  // nobody spun on.  The bound is the bump high-water mark, not the in-use
  // count: recycled indices below it may be reused (and locked) again, and
  // dead-owned chunks may themselves sit on the free-list side.
  int released = 0;
  const std::uint32_t n = arena_.high_water();
  for (std::uint32_t ref = 0; ref < n; ++ref) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const KV lk = arena_.entry(static_cast<ChunkRef>(ref), arena_.lock_slot())
                        .load(std::memory_order_acquire);
      if (lock_entry_state(lk) != kLocked) break;
      const std::uint32_t w = lock_entry_owner(lk);
      if (w == 0 || !leases_->expired(w)) break;
      if (maybe_recover(team, static_cast<ChunkRef>(ref), lk)) ++released;
    }
  }
  epoch.exit();
  return released;
}

}  // namespace gfsl::core
