// Online integrity scrub: detect, repair or quarantine damaged chunks
// (DESIGN.md §15).
//
// The pipeline mirrors reclaim_pass: a maintenance entry point walks the
// arena under an epoch pin and resolves each finding under try_lock, where
// the "an unlocked live chunk always matches its seal" invariant is exact.
// Resolution is strictly conservative:
//
//   * upper-level chunks are index-only — rebuild them from the level below
//     (keep keys that still exist there, re-home their down pointers, drop
//     the rest).  A dropped genuine key degrades search to the level below;
//     no user data is at stake.
//   * bottom chunks hold the user's keys — reconstruct the canonical slot
//     image from the chunk's version-record chain (PR 8 sidecar) and accept
//     it IFF it re-hashes to the stored seal.  The seal certifies the
//     repair: a wrong reconstruction (incomplete chain, bulk-loaded keys
//     with no records) can never be silently installed.
//   * anything else is quarantined: zombify + unseal, the lazy-unlink /
//     retire machinery removes it, and the exact lost key range
//     (pred_max, my_max] is reported — never a silent wrong answer.  A
//     chunk that fails its seal again after a successful repair (a stuck-at
//     cell re-asserting) escalates straight to quarantine.
//
// A level head can never be zombified (head_ pointers are not swung by the
// online protocol), and neither can a level TAIL: every zombie-skip in the
// traversal assumes a zombie has a live successor to follow, but the last
// chunk's next ref is NULL_CHUNK.  Both are evacuated in place instead —
// data slots reset (heads keep the -inf sentinel), blast radius =
// everything they held.
#include "core/gfsl.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

void Gfsl::reseal_all() {
  if (integrity_ == nullptr) return;
  const std::uint32_t hw = arena_.high_water();
  for (ChunkRef ref = 0; ref < hw; ++ref) {
    if ((arena_.generation(ref, std::memory_order_acquire) & 1u) != 0) {
      integrity_->unseal(ref);  // on the free-list
      continue;
    }
    const KV lock_kv =
        arena_.entry(ref, arena_.lock_slot()).load(std::memory_order_acquire);
    if (lock_entry_state(lock_kv) == kUnlocked) {
      integrity_->stamp(ref, arena_.generation(ref, std::memory_order_relaxed),
                        arena_.entries(ref), arena_.dsize());
    } else {
      // Zombies are frozen and skipped by every traversal; locked chunks
      // (impossible quiescently except as crash leftovers) get their seal at
      // the release that recovery performs.
      integrity_->unseal(ref);
    }
  }
}

ScrubReport Gfsl::scrub_pass(Team& team, std::uint32_t max_chunks) {
  ScrubReport rep;
  if (integrity_ == nullptr) return rep;
  EpochScope scope(*this, team);
  const std::uint32_t hw = arena_.high_water();
  std::uint32_t budget = (max_chunks == 0 || max_chunks > hw) ? hw : max_chunks;
  for (ChunkRef ref = 0; ref < hw && budget > 0; ++ref) {
    const std::uint32_t gen = arena_.generation(ref, std::memory_order_acquire);
    if ((gen & 1u) != 0) continue;  // free / mid-recycle
    if (!integrity_->sealed(ref, gen) && !integrity_->suspect(ref)) continue;
    --budget;
    ++rep.chunks_scanned;
    team.metric(obs::kScrubChunksScanned);
    if (!scrub_chunk(team, ref, &rep)) ++rep.skipped_busy;
  }
  team.metric(obs::kScrubPasses);
  scope.exit();
  return rep;
}

bool Gfsl::scrub_chunk(Team& team, ChunkRef ref, ScrubReport* rep) {
  if (integrity_ == nullptr) return true;
  {
    const std::uint32_t gen = arena_.generation(ref, std::memory_order_acquire);
    if ((gen & 1u) != 0 || !integrity_->sealed(ref, gen)) {
      integrity_->clear_suspect(ref);  // recycled or never sealed: moot
      return true;
    }
    const KV lock_kv =
        arena_.entry(ref, arena_.lock_slot()).load(std::memory_order_acquire);
    if (lock_entry_state(lock_kv) == kZombie) {
      // Frozen and unreachable-by-content: its seal no longer guards
      // anything a traversal consumes.
      integrity_->unseal(ref);
      return true;
    }
  }
  if (!try_lock(team, ref)) return false;  // busy: suspect stays for later


  // Under the lock the invariant is exact: a mismatch here is memory damage,
  // not a racing writer.
  const std::uint32_t gen = arena_.generation(ref, std::memory_order_relaxed);
  bool mismatch = false;
  if ((gen & 1u) == 0 && integrity_->sealed(ref, gen)) {
    team.metric(obs::kCorruptionSealsVerified);
    mismatch =
        !integrity_->verify_exact(ref, gen, arena_.entries(ref), arena_.dsize());
  }
  if (!mismatch) {
    integrity_->clear_suspect(ref);  // suspicion retracted (racy read-path flag)
    unlock(team, ref);
    return true;
  }

  team.metric(obs::kCorruptionSealMismatches);
  if (rep != nullptr) ++rep->mismatches;
  const int level = chunk_level_ != nullptr ? chunk_level_[ref] : 0;
  // Escalation: the first mismatch of a lifetime earns a repair attempt; a
  // second one means the cell re-asserted damage after we restamped — the
  // memory itself is bad, quarantine instead of repairing forever.
  const bool first_offense = integrity_->note_repair(ref) <= 1;
  bool fixed = false;
  if (first_offense) {
    fixed = level == 0 ? repair_bottom_chunk(team, ref)
                       : repair_upper_chunk(team, ref, level);
  }
  if (fixed) {
    team.metric(obs::kCorruptionChunksRepaired);
    if (rep != nullptr) ++rep->repaired;
    integrity_->clear_suspect(ref);
    unlock(team, ref);  // restamps the seal over the repaired slots
  } else {
    quarantine_chunk(team, ref, level, rep);
  }
  return true;
}

bool Gfsl::repair_upper_chunk(Team& team, ChunkRef ref, int level) {
  const Key hi = next_entry_max(
      arena_.entry(ref, arena_.next_slot()).load(std::memory_order_acquire));
  const bool is_head =
      ref ==
      head_[static_cast<std::size_t>(level)].load(std::memory_order_acquire);
  const ChunkRef below_head =
      head_[static_cast<std::size_t>(level - 1)].load(std::memory_order_acquire);

  // Keep every index key the level below still vouches for, re-homed to the
  // chunk actually holding it (a valid down target by §4.3: the enclosing
  // chunk is laterally reachable from itself).  Everything else — garbage
  // keys, out-of-range keys, keys whose bottom home vanished — is dropped;
  // a dropped genuine key is the legal stale-upper-key state inverted and
  // only costs one extra lateral step to searches.
  std::vector<std::pair<Key, Value>> kept;
  for (int s = 0; s < arena_.dsize(); ++s) {
    const KV e = arena_.entry(ref, s).load(std::memory_order_acquire);
    if (kv_is_empty(e)) continue;
    const Key k = kv_key(e);
    if (k < MIN_USER_KEY || k > MAX_USER_KEY || k > hi) continue;
    const auto [found, home] = find_lateral(team, k, below_head);
    if (!found) continue;
    kept.emplace_back(k, static_cast<Value>(home));
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             kept.end());

  int slot = 0;
  if (is_head) {
    const Value down = static_cast<Value>(below_head);
    write_entry(team, ref, slot++, make_kv(KEY_NEG_INF, down));
  }
  for (const auto& [k, v] : kept) {
    if (slot >= arena_.dsize()) break;  // truncation is index-only loss
    write_entry(team, ref, slot++, make_kv(k, v));
  }
  while (slot < arena_.dsize()) write_entry(team, ref, slot++, KV_EMPTY);
  return true;
}

bool Gfsl::repair_bottom_chunk(Team& team, ChunkRef ref) {
  if (snaps_ == nullptr) return false;  // no version chain to restore from
  const std::uint32_t gen = arena_.generation(ref, std::memory_order_relaxed);
  const Key hi = next_entry_max(
      arena_.entry(ref, arena_.next_slot()).load(std::memory_order_acquire));

  // The chunk's canonical content per the version sidecar: one live record
  // per resident key (push-front chains — the first record seen for a key is
  // the newest; superseded split/merge copies are filtered by the key range).
  std::vector<std::pair<Key, Value>> live;
  std::unordered_set<Key> seen;
  RecIdx i = snaps_->chain_head(ref);
  std::uint32_t cap = snaps_->walk_cap();
  while (i != SnapshotManager::kNullRec && cap-- > 0) {
    const VersionRec& r = snaps_->rec(i);
    if (r.key >= MIN_USER_KEY && r.key <= hi && seen.insert(r.key).second &&
        r.erase_rev.load(std::memory_order_acquire) ==
            SnapshotManager::kRevLive) {
      live.emplace_back(r.key, r.value);
    }
    i = r.next.load(std::memory_order_acquire);
  }
  std::sort(live.begin(), live.end());

  const bool is_head =
      ref == head_[0].load(std::memory_order_acquire);
  std::vector<KV> cand(static_cast<std::size_t>(arena_.dsize()), KV_EMPTY);
  std::size_t slot = 0;
  if (is_head) cand[slot++] = make_kv(KEY_NEG_INF, Value{0});
  if (live.size() > cand.size() - slot) return false;
  for (const auto& [k, v] : live) cand[slot++] = make_kv(k, v);

  // Certification: install the reconstruction IFF it re-hashes to the seal
  // stamped at the last lock release.  An incomplete chain (bulk-loaded /
  // recovered keys have no records) or any drift fails here and falls
  // through to quarantine — a wrong image is never silently served.
  if (!integrity_->verify_snapshot(ref, gen, cand.data(), arena_.dsize())) {
    return false;
  }
  for (int s = 0; s < arena_.dsize(); ++s) {
    write_entry(team, ref, s, cand[static_cast<std::size_t>(s)]);
  }
  return true;
}

void Gfsl::quarantine_chunk(Team& team, ChunkRef ref, int level,
                            ScrubReport* rep) {
  const KV next_kv =
      arena_.entry(ref, arena_.next_slot()).load(std::memory_order_acquire);
  const Key hi = next_entry_max(next_kv);
  const ChunkRef head =
      head_[static_cast<std::size_t>(level)].load(std::memory_order_acquire);

  // Blast radius: keys in (pred_max, my_max] resident here are gone.  Only
  // the bottom level loses user data — an upper chunk is index-only, its
  // keys all still live below.
  Key lo = KEY_NEG_INF;
  if (ref != head) {
    // Walk to the victim tracking the max of the last LIVE chunk before it:
    // a zombie predecessor's keys were already merged rightward (possibly
    // into this very victim), so its max does not bound the victim's
    // envelope — e.g. [A max=6] -> [Z max=15] -> [victim {12,18,24}] holds
    // (6, 24], not (15, 24].  If the walk never reaches the victim (the
    // chain itself is damaged) lo stays at -inf: over-report, never under.
    ChunkRef cur = head;
    Key last_live = KEY_NEG_INF;
    std::uint32_t steps = 0;
    while (cur != NULL_CHUNK && steps++ < arena_.capacity()) {
      const KV nk =
          arena_.entry(cur, arena_.next_slot()).load(std::memory_order_acquire);
      const KV lk =
          arena_.entry(cur, arena_.lock_slot()).load(std::memory_order_acquire);
      if (lock_entry_state(lk) != kZombie) last_live = next_entry_max(nk);
      if (next_entry_ref(nk) == ref) {
        lo = last_live;
        break;
      }
      cur = next_entry_ref(nk);
    }
  }
  if (level == 0) {
    if (rep != nullptr) rep->lost.push_back({ref, lo, hi});
    team.metric(obs::kCorruptionChunksLost);
  }
  team.metric(obs::kCorruptionChunksQuarantined);
  if (rep != nullptr) ++rep->quarantined;
  integrity_->unseal(ref);

  if (ref == head || next_entry_ref(next_kv) == NULL_CHUNK) {
    // Heads cannot be zombified (head_ pointers are never swung), and
    // neither can a level tail: zombie-skip follows the zombie's next ref,
    // which for the last chunk is NULL_CHUNK.  Evacuate in place instead.
    // The stored max stays — an empty chunk with max `hi` is a legal
    // enclosing chunk that simply contains nothing, and an empty last chunk
    // (max inf) is the structure's normal drained state.
    int s = 0;
    if (ref == head) {
      const Value down =
          level == 0 ? Value{0}
                     : static_cast<Value>(
                           head_[static_cast<std::size_t>(level - 1)].load(
                               std::memory_order_acquire));
      write_entry(team, ref, s++, make_kv(KEY_NEG_INF, down));
    }
    for (; s < arena_.dsize(); ++s) write_entry(team, ref, s, KV_EMPTY);
    if (level == 0 && snaps_ != nullptr) {
      // The chunk stays live, so its version chain stays reachable: stamp
      // the evacuated keys' live records erased at the quarantine revision.
      // Snapshots older than now keep serving the genuine pre-damage
      // values; the present tense loses the keys exactly as reported.  The
      // chain, not the (untrusted, corrupt) slots, names what was lost.
      CommitScope cscope(*this, team);
      const Rev qr = commit_rev(team);
      std::vector<std::pair<Key, Value>> live;
      std::unordered_set<Key> seen;
      RecIdx i = snaps_->chain_head(ref);
      std::uint32_t cap = snaps_->walk_cap();
      while (i != SnapshotManager::kNullRec && cap-- > 0) {
        const VersionRec& r = snaps_->rec(i);
        if (seen.insert(r.key).second &&
            r.erase_rev.load(std::memory_order_acquire) ==
                SnapshotManager::kRevLive) {
          live.emplace_back(r.key, r.value);
        }
        i = r.next.load(std::memory_order_acquire);
      }
      if (qr != 0) {
        for (const auto& [k, v] : live) snaps_->mark_erased(ref, k, v, qr);
      }
    }
    integrity_->reset_repairs(ref);
    integrity_->clear_suspect(ref);
    unlock(team, ref);  // restamps over the evacuated slots
    return;
  }
  // Terminal zombify under the held lock; the lazy-unlink machinery
  // (lock_next_chunk / redirect_to_remove_zombie) removes and retires it.
  mark_zombie(team, ref);
  bump_level(level, -1);
  if (foresight_ != nullptr && level == 0) foresight_->mark_dirty();
}

}  // namespace gfsl::core
