// Whole-process crash recovery over a persisted region (DESIGN.md §12).
//
// The process-crash model: every durable word (chunk slots, generation
// stamps, free-list linkage, level heads, intent descriptors, lease slots)
// lives in an mmap'd MAP_SHARED file, so a SIGKILL at any persist point
// leaves exactly the prefix of stores issued before that point.  recover()
// turns such an image back into a serviceable structure:
//
//   1. Death certificates: every persisted lease generation is marked
//      crashed — no team of the dead process can still be running — and the
//      recovery medic id is revived so its own repairs are attributable.
//   2. Intent replay: the §8 medic sweep (recover_all_expired) claims every
//      published intent against the now-expired leases, rolls each half-done
//      mutation forward or back with the chunk-state-only repairs, releases
//      every dead-owned lock, and force-quiesces stale epoch pins.
//   3. Upper-level scrub: a key whose bottom-level home vanished mid-crash
//      (the raise published before the bottom insert, or an erase peeled the
//      bottom copy and died before the upper one) is dropped; surviving down
//      pointers whose target chunk no longer laterally reaches the key's
//      enclosing chunk are re-homed to the level-below head, from which it
//      always is.  Upper chunks emptied by the drop are unlinked.
//   4. Arena normalization: one reachability walk over every level (zombies
//      included) classifies each index the bump pointer ever handed out —
//      odd generation or unreachable means free — and rebuilds the tagged
//      free-list deterministically (ascending pops, tag 0).  A torn
//      allocation (killed inside alloc_locked's init window) is odd by
//      construction and therefore always classified free, never live.
//   5. Canonicalization: lease slots reset to epoch 0, superblock marked
//      recovered.  This — plus repairs that only ever touch chunk state and
//      generation bumps that only go even -> odd — is what makes recover()
//      idempotent: a second run, or a re-run after a recoverer was itself
//      killed mid-repair, converges to the bit-identical image.
//   6. A strict validate() gates the result; serving a structure recover()
//      did not pass is a caller bug.
#include <set>
#include <string>
#include <vector>

#include "core/gfsl.h"
#include "core/inspect.h"

namespace gfsl::core {

using simt::Team;

namespace {

// Non-empty data entries of `ref`, host-side (quiescent).
std::vector<KV> data_of(const ChunkArena& arena, ChunkRef ref) {
  std::vector<KV> out;
  const std::atomic<KV>* e = arena.entries(ref);
  for (int i = 0; i < arena.dsize(); ++i) {
    const KV kv = e[i].load(std::memory_order_acquire);
    if (!kv_is_empty(kv)) out.push_back(kv);
  }
  return out;
}

}  // namespace

void Gfsl::scrub_upper_levels(RecoveryReport& rep) {
  // Bottom-up: level l is scrubbed against the *post-scrub* level l-1, so
  // one pass suffices.  All stores are direct (quiescent, offline); each
  // chunk rewrite is compacted ascending so the empties-grouped-at-end and
  // sortedness invariants hold at every intermediate store.
  std::set<Key> below_keys;
  std::set<ChunkRef> below_live;
  {
    ChunkRef cur = head_[0].load(std::memory_order_acquire);
    std::set<ChunkRef> seen;
    while (cur != NULL_CHUNK && seen.insert(cur).second) {
      const std::atomic<KV>* e = arena_.entries(cur);
      const KV lk = e[arena_.lock_slot()].load(std::memory_order_acquire);
      if (lock_entry_state(lk) != kZombie) {
        below_live.insert(cur);
        for (const KV kv : data_of(arena_, cur)) {
          if (kv_key(kv) != KEY_NEG_INF) below_keys.insert(kv_key(kv));
        }
      }
      cur = next_entry_ref(
          e[arena_.next_slot()].load(std::memory_order_acquire));
    }
  }

  for (int l = 1; l < max_levels(); ++l) {
    const ChunkRef head =
        head_[static_cast<std::size_t>(l)].load(std::memory_order_acquire);
    if (head == NULL_CHUNK) break;
    std::set<Key> kept_keys;
    std::set<ChunkRef> kept_live;

    // `prev` tracks the last surviving non-zombie chunk: it owns the NEXT
    // entry that unlinks an emptied successor.
    ChunkRef prev = NULL_CHUNK;
    Key prev_max = KEY_NEG_INF;
    ChunkRef cur = head;
    std::set<ChunkRef> seen;
    while (cur != NULL_CHUNK && seen.insert(cur).second) {
      std::atomic<KV>* e = arena_.entries(cur);
      const KV nx = e[arena_.next_slot()].load(std::memory_order_acquire);
      const ChunkRef nxt = next_entry_ref(nx);
      const KV lk = e[arena_.lock_slot()].load(std::memory_order_acquire);
      if (lock_entry_state(lk) == kZombie) {
        // Reachable zombies stay linked (validate accepts linked zombies);
        // post-restart traversals unlink them organically.
        cur = nxt;
        continue;
      }

      const std::vector<KV> data = data_of(arena_, cur);
      std::vector<KV> kept;
      kept.reserve(data.size());
      for (const KV kv : data) {
        const Key k = kv_key(kv);
        if (k != KEY_NEG_INF && below_keys.count(k) == 0) {
          ++rep.stale_keys_scrubbed;
          continue;  // no home below: the raise lost its key
        }
        // Down-pointer validity (§4.3): from the target, the key's
        // enclosing chunk below must be laterally reachable.  Re-home to
        // the level-below head otherwise — the head reaches everything.
        auto target = static_cast<ChunkRef>(kv_value(kv));
        bool reaches = false;
        ChunkRef walk = target;
        std::set<ChunkRef> wseen;
        while (walk != NULL_CHUNK && wseen.insert(walk).second) {
          const std::atomic<KV>* we = arena_.entries(walk);
          const KV wl = we[arena_.lock_slot()].load(std::memory_order_acquire);
          const KV wn = we[arena_.next_slot()].load(std::memory_order_acquire);
          if (lock_entry_state(wl) != kZombie && next_entry_max(wn) >= k) {
            reaches = below_live.count(walk) != 0;
            break;
          }
          walk = next_entry_ref(wn);
        }
        if (!reaches) {
          target = head_[static_cast<std::size_t>(l - 1)].load(
              std::memory_order_acquire);
        }
        kept.push_back(make_kv(k, static_cast<Value>(target)));
      }

      if (kept.empty() && nxt != NULL_CHUNK && prev != NULL_CHUNK) {
        // Emptied non-last chunk: unlink it under recovery's exclusive
        // ownership (an empty non-last chunk violates validate()).  The
        // predecessor's max is preserved — unless the unlink makes it the
        // last chunk, whose max must be inf.
        e[arena_.lock_slot()].store(make_lock_entry(kZombie),
                                    std::memory_order_release);
        persist_point();
        arena_.entry(prev, arena_.next_slot())
            .store(make_next_entry(prev_max, nxt), std::memory_order_release);
        persist_point();
        ++rep.chunks_unlinked;
        cur = nxt;
        continue;
      }

      // Rewrite the data span if anything changed, compacted ascending.
      for (std::size_t i = 0; i < kept.size(); ++i) {
        if (i >= data.size() || data[i] != kept[i]) {
          e[i].store(kept[i], std::memory_order_release);
          persist_point();
        }
      }
      for (std::size_t i = kept.size(); i < data.size(); ++i) {
        e[i].store(KV_EMPTY, std::memory_order_release);
        persist_point();
      }
      // Non-last max must equal the largest key; the scrub can only have
      // lowered it.  (An emptied *last* chunk keeps max == inf.)
      if (nxt != NULL_CHUNK && !kept.empty() &&
          next_entry_max(nx) != kv_key(kept.back())) {
        e[arena_.next_slot()].store(
            make_next_entry(kv_key(kept.back()), nxt),
            std::memory_order_release);
        persist_point();
      }

      kept_live.insert(cur);
      for (const KV kv : kept) {
        if (kv_key(kv) != KEY_NEG_INF) kept_keys.insert(kv_key(kv));
      }
      prev = cur;
      prev_max = kept.empty() ? prev_max : kv_key(kept.back());
      cur = nxt;
    }

    below_keys.swap(kept_keys);
    below_live.swap(kept_live);
  }
}

RecoveryReport Gfsl::recover() {
  RecoveryReport rep;
  auto fail = [&rep](const std::string& msg) {
    if (rep.ok) {
      rep.ok = false;
      rep.error = msg;
    }
  };
  if (region_ == nullptr) {
    fail("recover() requires a persist region");
    return rep;
  }
  // 0. Distrust the adopted image's superblock before dereferencing any
  // geometry derived from it: attach() validated the file once, but the
  // mapping is live memory — damage after attach (or a fault-plane
  // injection) would otherwise steer every section pointer below.  A typed
  // failure here beats undefined behavior three steps later.
  {
    std::string sb_err;
    if (!region_->verify_superblock(&sb_err)) {
      fail("superblock rejected: " + sb_err);
      return rep;
    }
  }
  // The constructor enforces region => leases, so leases_ is non-null here.
  // The hint table is process-local and describes the pre-crash image;
  // unpublish it before any repair so no post-recovery op trusts it.
  if (foresight_ != nullptr) foresight_->invalidate_all();

  // 1. Death certificates for every persisted lease generation, then a live
  // lease for the medic so its claims and repair locks are attributable
  // (and themselves recoverable if a test kills recovery mid-repair).
  leases_->mark_all_crashed();
  leases_->revive(kRecoveryMedicId);

  for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
    if (intents_[id].word.load(std::memory_order_acquire) != 0) {
      ++rep.intents_repaired;
    }
  }

  // 2. Intent replay + dead-lock release + stale-pin quiesce: the same §8
  // medic sweep the in-process crash harness runs, now against an image
  // where *every* lease is expired.
  Team medic(cfg_.team_size, kRecoveryMedicId, /*seed=*/7);
  rep.locks_released = recover_all_expired(medic);

  const std::uint32_t hw = arena_.high_water();
  for (std::uint32_t i = 0; i < hw; ++i) {
    const KV lk = arena_.entries(static_cast<ChunkRef>(i))[arena_.lock_slot()]
                      .load(std::memory_order_acquire);
    if (lock_entry_state(lk) == kLocked) {
      fail("chunk " + std::to_string(i) + " still locked after the medic "
           "sweep (owner word " + std::to_string(lock_entry_owner(lk)) + ")");
      return rep;
    }
  }
  for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
    const std::uint32_t iw =
        intents_[id].word.load(std::memory_order_acquire);
    if (iw == 0) continue;
    // The expiry-gated sweep above skips a word whose encoded team/epoch
    // decodes to nothing expirable — but every lease except the medic's was
    // just marked crashed, so no live publisher can exist: a surviving
    // claim is a corrupted word, not an open intent.  Force-claim it; the
    // payload triage inside recover_intent replays a genuine record and
    // rolls garbage back.
    if (!recover_intent(medic, intents_[id], iw) ||
        intents_[id].word.load(std::memory_order_acquire) != 0) {
      fail("intent slot " + std::to_string(id) +
           " still claimed after the medic sweep");
      return rep;
    }
  }

  // 3. Drop upper-level keys whose bottom home vanished; re-home surviving
  // down pointers; unlink emptied upper chunks.
  scrub_upper_levels(rep);

  // 4. Rebuild the volatile per-level gauges: chunks-in-level counts
  // non-zombie chunks beyond the first (construction stores 0 with one
  // chunk in the level).
  GfslInspector insp(*this);
  std::set<ChunkRef> reachable;
  for (int l = 0; l < max_levels(); ++l) {
    bool cycle = false;
    const auto chain = insp.level_chain(l, &cycle);
    if (cycle) {
      fail("cycle in level " + std::to_string(l) + " survived recovery");
      return rep;
    }
    if (chain.empty()) {
      fail("level " + std::to_string(l) + " lost its head chunk");
      return rep;
    }
    std::int64_t live = 0;
    for (const auto& ch : chain) {
      reachable.insert(ch.ref);
      // The chunk-level byte array is volatile; the reachability walk is
      // the one place that knows every live chunk's level, so rebuild the
      // bottom-gate for version stamping here.
      set_chunk_level(ch.ref, l);
      if (ch.lock != kZombie) ++live;
    }
    level_chunks_[static_cast<std::size_t>(l)].store(
        live - 1, std::memory_order_relaxed);
  }
  for (int l = max_levels(); l < kMaxLevels; ++l) {
    level_chunks_[static_cast<std::size_t>(l)].store(
        0, std::memory_order_relaxed);
  }

  // 4b. Generation triage: a *reachable* chunk with an odd stamp cannot
  // arise from any legal crash interleaving — alloc_locked flips the stamp
  // even before the link that makes the chunk reachable is published, and
  // recycle only runs after the unlink.  It is memory damage in the stamp
  // word itself; left alone, step 5 would push a still-linked chunk onto
  // the free-list and hand its index out for reuse.  Normalize it back to
  // even (the chunk's contents were already vetted by the scrub above).
  for (const ChunkRef ref : reachable) {
    if ((arena_.generation(ref) & 1u) != 0) {
      arena_.force_even_generation(ref);
      persist_point();
      ++rep.generations_repaired;
    }
  }

  // 5. Rebuild the free-list from the classification: an index is free iff
  // its generation is odd (a completed recycle, or an allocation killed
  // inside its init window — the stamp goes even only after the last init
  // store) or nothing reaches it (unlinked zombies whose retire never
  // drained, allocations killed before their link was published, limbo
  // carried by the dead process).  Descending collection => ascending pops,
  // and rebuild_free resets the tag: the rebuilt list is a pure function of
  // the repaired image.
  std::vector<ChunkRef> free_refs;
  for (std::uint32_t i = hw; i > 0; --i) {
    const auto ref = static_cast<ChunkRef>(i - 1);
    if ((arena_.generation(ref) & 1u) != 0 || reachable.count(ref) == 0) {
      free_refs.push_back(ref);
    }
  }
  arena_.rebuild_free(free_refs);
  rep.chunks_freed = free_refs.size();
  persist_point();

  // 6. Canonicalize: no lock or intent references a minted lease word any
  // more, so the table resets to epoch 0 across the board — a recovered
  // image is a function of the crash state alone, not of how many recovery
  // attempts it took.  Then stamp the superblock.
  leases_->reset_all();
  region_->mark_recovered();

  // 7. Collapse version history: no snapshot survives a process death, so
  // every surviving key acts as insert_rev 0 (visible to all future
  // snapshots) and the chains drop wholesale.  The durable revision word
  // (CAS-max'd at every begin_commit) restores the clock so post-restart
  // revisions never collide with pre-crash ones a lagging replica (or a
  // re-attached image) might have observed.
  if (snaps_ != nullptr) {
    snaps_->reset();
    snaps_->restore_rev(
        static_cast<std::atomic<std::uint64_t>*>(region_->durable_rev())
            ->load(std::memory_order_relaxed));
  }

  // Fresh seals over the repaired image: every surviving chunk was rewritten
  // or vetted above, so the recovered state is the new integrity baseline.
  reseal_all();

  rep.validation = validate(/*strict=*/true);
  if (!rep.validation.ok) {
    fail("post-recovery validation failed: " + rep.validation.error);
  }
  return rep;
}

}  // namespace gfsl::core
