// Intent descriptors: the redo/undo log behind crash-tolerant mutations.
//
// Every destructive span in GFSL (insert shift, erase shift, split publish,
// merge copy, down-pointer swing) publishes a per-team *intent* before its
// first destructive store and clears it after its last.  A peer that finds a
// chunk locked by an expired lease (sched/lease.h) reads the dead team's
// intent and either rolls the mutation forward (it is decided: split
// published, merge in progress) or back (partial insert shift), then releases
// the dead team's locks on the mutated chunks.  Locks the dead team held on
// chunks it was *not* mutating (the insert's bottom lock, a split's
// successor) are stolen individually by whoever spins on them, once the
// owner's intent slot is clear — their contents are consistent by
// construction, because every destructive store lies inside an intent span.
//
// The recovery rules are derived in DESIGN.md §Fault tolerance; each decides
// from the *chunk state alone* (which makes recovery idempotent and
// therefore restartable if a recoverer itself dies):
//
//   kInsertShift — a partial right-to-left shift leaves exactly one adjacent
//                  duplicated entry; dedup-left restores the pre-insert chunk
//                  (roll-back).  If the key landed, the shift had completed.
//   kEraseShift  — key still present: re-execute the removal (roll-forward);
//                  one adjacent duplicate: resume the left shift; neither:
//                  the span never started or had finished.
//   kSplit       — published iff the split chunk's NEXT names the fresh
//                  chunk; then clear the moved (key > new max) tail
//                  (roll-forward).  An unpublished fresh chunk is
//                  unreachable and merely leaks until compact().
//   kMerge       — enclosing chunk already zombie: the merge finished;
//                  otherwise rewrite the successor with the sorted distinct
//                  union of (enclosing minus key) and its current contents,
//                  then zombify the enclosing chunk (roll-forward).
//   kDownSwing   — the swing itself is one atomic write; just release.
//
// Each slot is single-writer (its own team, only while alive) with one
// multi-reader handshake: `word`.  A recoverer claims a dead team's intent
// by CASing `word` from the expired lease word to its own; this serializes
// racing recoverers, and a recoverer that dies mid-repair leaves a
// claimable (expired) word behind for the next peer to redo the work.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/types.h"

namespace gfsl::core {

enum class IntentKind : std::uint32_t {
  kNone = 0,
  kInsertShift,  // shifting entries right in `a` to insert (key, value)
  kEraseShift,   // shifting entries left in `a` to remove key
  kSplit,        // splitting `a`: fresh chunk `fresh` takes its top half
  kMerge,        // merging `a` (enclosing, to zombify) into `b` (successor)
  kDownSwing,    // swinging a down-pointer entry in `a` (one atomic write)
};

/// One team's published intent.  Fields are stored relaxed by the owner,
/// then `word` is released; a recoverer's acquire/claim of `word` makes the
/// fields visible.  Between spans the fields are stale and `word` is 0.
struct IntentSlot {
  /// Owner's lease word while an intent is live, 0 when idle.  Doubles as
  /// the recovery guard: a recoverer CASes (expired word -> its own word) to
  /// claim the slot, then stores 0 once the repair is complete.
  std::atomic<std::uint32_t> word{0};
  /// The *publishing* team's lease word, never overwritten by claims.  Every
  /// repair and release is guarded on "this chunk is still locked by exactly
  /// this word", so a claim chain that crosses generations (a recoverer dies
  /// and is itself recovered) can never touch a chunk that has since been
  /// released and re-acquired by a live team.
  std::atomic<std::uint32_t> owner{0};
  std::atomic<std::uint32_t> kind{0};  // IntentKind
  std::atomic<Key> key{0};
  std::atomic<ChunkRef> a{NULL_CHUNK};      // primary chunk being mutated
  std::atomic<ChunkRef> b{NULL_CHUNK};      // merge successor
  std::atomic<ChunkRef> fresh{NULL_CHUNK};  // split: newly allocated chunk
};

}  // namespace gfsl::core
