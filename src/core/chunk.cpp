#include "core/chunk.h"

#include <cassert>
#include <new>
#include <stdexcept>

namespace gfsl::core {

namespace {

// Region-backed atomics are placed into the mapped file by address; both
// properties below are what make that representation-stable: the atomic is
// exactly its value word (no embedded lock) and same-sized as the plain type.
static_assert(std::atomic<KV>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(sizeof(std::atomic<KV>) == sizeof(KV));
static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));

}  // namespace

ChunkArena::ChunkArena(int entries_per_chunk, std::uint32_t capacity,
                       device::PersistRegion* region)
    : n_(entries_per_chunk), capacity_(capacity) {
  if (n_ < 8 || n_ > 32 || (n_ & (n_ - 1)) != 0) {
    throw std::invalid_argument("chunk size must be a power of two in [8, 32]");
  }
  if (capacity == 0) {
    throw std::invalid_argument("chunk arena capacity must be positive");
  }
  if (region == nullptr) {
    slots_own_.reset(new std::atomic<KV>[static_cast<std::size_t>(n_) *
                                         capacity]);
    gen_own_.reset(new std::atomic<std::uint32_t>[capacity]);
    free_next_own_.reset(new std::atomic<std::uint32_t>[capacity]);
    slots_ = slots_own_.get();
    gen_ = gen_own_.get();
    free_next_ = free_next_own_.get();
    next_ = &ctl_own_.next;
    free_count_ = &ctl_own_.free_count;
    free_head_ = &ctl_own_.free_head;
  } else {
    if (region->geometry().entries_per_chunk !=
            static_cast<std::uint32_t>(n_) ||
        region->geometry().capacity != capacity_) {
      throw std::invalid_argument(
          "persist region geometry does not match the arena configuration");
    }
    slots_ = static_cast<std::atomic<KV>*>(region->chunk_slots());
    gen_ = static_cast<std::atomic<std::uint32_t>*>(region->generations());
    free_next_ = static_cast<std::atomic<std::uint32_t>*>(region->free_links());
    auto* ctl = static_cast<Control*>(region->arena_control());
    static_assert(sizeof(Control) <= device::PersistRegion::kArenaControlBytes);
    // The durable MVCC revision lives at byte 16 of this section
    // (PersistRegion::durable_rev); the arena must not grow into it.
    static_assert(sizeof(Control) <= 16);
    next_ = &ctl->next;
    free_count_ = &ctl->free_count;
    free_head_ = &ctl->free_head;
    if (!region->fresh()) {
      // Attach: the stored arena state IS the arena.  Gfsl::recover()
      // re-derives the free-list and normalizes torn allocations before the
      // structure serves anything.
      return;
    }
  }
  next_->store(0, std::memory_order_relaxed);
  free_head_->store(pack_head(0, NULL_CHUNK), std::memory_order_relaxed);
  free_count_->store(0, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    gen_[i].store(0, std::memory_order_relaxed);
    free_next_[i].store(NULL_CHUNK, std::memory_order_relaxed);
  }
}

ChunkRef ChunkArena::pop_free() {
  std::uint64_t h = free_head_->load(std::memory_order_acquire);
  while (head_index(h) != NULL_CHUNK) {
    const std::uint32_t idx = head_index(h);
    const std::uint32_t nxt = free_next_[idx].load(std::memory_order_relaxed);
    // The tag is bumped only on push, so the popped node's `free_next_` read
    // above is stable across a successful CAS: a concurrent pop+repush of
    // `idx` would have changed the tag.
    if (free_head_->compare_exchange_weak(h, pack_head(head_tag(h), nxt),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      free_count_->fetch_sub(1, std::memory_order_relaxed);
      // Generation protocol: an index coming off the free-list is mid-flip —
      // recycle() made it odd and it stays odd until this allocation's last
      // initialization store.
      assert((gen_[idx].load(std::memory_order_relaxed) & 1u) != 0 &&
             "free-list entry with an even (in-use) generation");
      return idx;
    }
  }
  return NULL_CHUNK;
}

ChunkRef ChunkArena::alloc_locked(std::uint32_t owner_word) {
  // Recycled indices first (LIFO keeps the working set hot), bump fallback.
  ChunkRef ref = pop_free();
  if (ref == NULL_CHUNK) {
    const std::uint32_t idx = next_->fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      next_->fetch_sub(1, std::memory_order_relaxed);
      return NULL_CHUNK;  // exhaustion is a value, not an exception
    }
    ref = idx;
  }
  // Seqlock write phase: the generation stays *odd* (recycle() flipped it)
  // for the entire initialization, so a reader that samples the stamp at any
  // point inside this window rejects the read.  Only after the last store
  // does the generation go even — publishing the stamp before (or amid) the
  // stores would let a reader whose read falls entirely inside the init
  // window accept a torn mix of retired-lifetime and fresh contents.
  std::atomic<KV>* e = entries(ref);
  for (int i = 0; i < dsize(); ++i) {
    e[i].store(KV_EMPTY, std::memory_order_relaxed);
  }
  e[next_slot()].store(make_next_entry(KEY_INF, NULL_CHUNK),
                       std::memory_order_relaxed);
  // Release so a team that later reaches this chunk through an atomically
  // published pointer observes the initialized contents.
  e[lock_slot()].store(make_lock_entry(kLocked, owner_word),
                       std::memory_order_release);
  // Transition to "in use" (even) as the last step.  Release publishes the
  // initialization stores above before the stamp a seqlock reader validates
  // against; bump-fresh indices are born even (0) and were never reachable
  // before this call, so they need no flip.
  if ((gen_[ref].load(std::memory_order_relaxed) & 1u) != 0) {
    gen_[ref].fetch_add(1, std::memory_order_release);
  }
  return ref;
}

void ChunkArena::recycle(ChunkRef ref) {
  // Generation protocol: only an in-use (even) chunk may be recycled; a
  // second recycle of the same lifetime would flip it back to "in use" while
  // it sits on the free-list.
  assert((gen_[ref].load(std::memory_order_relaxed) & 1u) == 0 &&
         "recycle of a chunk that is already free (odd generation)");
  // Odd = free.  acq_rel: release publishes every store of the retiring
  // lifetime before the stamp flips, so a reader whose post-read stamp still
  // matches its pre-read stamp is guaranteed a consistent snapshot.
  gen_[ref].fetch_add(1, std::memory_order_acq_rel);
  std::uint64_t h = free_head_->load(std::memory_order_relaxed);
  for (;;) {
    free_next_[ref].store(head_index(h), std::memory_order_relaxed);
    if (free_head_->compare_exchange_weak(h, pack_head(head_tag(h) + 1, ref),
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  free_count_->fetch_add(1, std::memory_order_relaxed);
}

void ChunkArena::reset() {
  next_->store(0, std::memory_order_relaxed);
  free_head_->store(pack_head(0, NULL_CHUNK), std::memory_order_relaxed);
  free_count_->store(0, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    free_next_[i].store(NULL_CHUNK, std::memory_order_relaxed);
  }
}

void ChunkArena::rebuild_free(const std::vector<ChunkRef>& free_refs) {
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    free_next_[i].store(NULL_CHUNK, std::memory_order_relaxed);
  }
  std::uint32_t head = NULL_CHUNK;
  for (const ChunkRef ref : free_refs) {
    const std::uint32_t g = gen_[ref].load(std::memory_order_relaxed);
    if ((g & 1u) == 0) {
      // A torn allocation (killed mid-init) or an unreachable in-use chunk:
      // flip it free.  Already-odd stamps stay put so re-running recovery
      // reproduces the same image bit for bit.
      gen_[ref].store(g + 1, std::memory_order_relaxed);
    }
    free_next_[ref].store(head, std::memory_order_relaxed);
    head = ref;
  }
  free_head_->store(pack_head(0, head), std::memory_order_relaxed);
  free_count_->store(static_cast<std::uint32_t>(free_refs.size()),
                     std::memory_order_relaxed);
}

}  // namespace gfsl::core
