#include "core/chunk.h"

#include <new>
#include <stdexcept>

namespace gfsl::core {

ChunkArena::ChunkArena(int entries_per_chunk, std::uint32_t capacity)
    : n_(entries_per_chunk),
      capacity_(capacity),
      slots_(new std::atomic<KV>[static_cast<std::size_t>(entries_per_chunk) *
                                 capacity]),
      next_(0) {
  if (n_ < 8 || n_ > 32 || (n_ & (n_ - 1)) != 0) {
    throw std::invalid_argument("chunk size must be a power of two in [8, 32]");
  }
  if (capacity == 0) {
    throw std::invalid_argument("chunk arena capacity must be positive");
  }
}

ChunkRef ChunkArena::alloc_locked(std::uint32_t owner_word) {
  const std::uint32_t ref = next_.fetch_add(1, std::memory_order_relaxed);
  if (ref >= capacity_) {
    next_.fetch_sub(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
  std::atomic<KV>* e = entries(ref);
  for (int i = 0; i < dsize(); ++i) {
    e[i].store(KV_EMPTY, std::memory_order_relaxed);
  }
  e[next_slot()].store(make_next_entry(KEY_INF, NULL_CHUNK),
                       std::memory_order_relaxed);
  // Release so a team that later reaches this chunk through an atomically
  // published pointer observes the initialized contents.
  e[lock_slot()].store(make_lock_entry(kLocked, owner_word),
                       std::memory_order_release);
  return ref;
}

}  // namespace gfsl::core
