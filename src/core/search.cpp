// Traversal: Contains (Algorithms 4.1-4.4) and the path-recording searchSlow
// used by Insert and Delete (Algorithm 4.6).
#include "core/gfsl.h"

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

int Gfsl::tid_for_next_step(Team& team, Key k, const LaneVec<KV>& kv) {
  // Algorithm 4.3.  DATA lanes vote "my key <= k" (EMPTY keys are inf, so
  // they vote false); the NEXT lane votes "max < k" (lateral step); the LOCK
  // lane always votes false.  The highest voting lane wins — precedence to
  // higher tIds is what makes concurrent shifts/splits safe for readers
  // (§4.2.2).
  const int dsz = team.dsize();
  const int nxt = team.next_lane();
  const std::uint32_t bal = team.ballot_fn([&](int i) {
    if (i < dsz) return kv_key(kv[i]) <= k;
    if (i == nxt) return next_entry_max(kv[i]) < k;
    return false;
  });
  if (bal == 0) return kNone;
  return Team::highest_lane(bal);
}

int Gfsl::tid_with_equal_key(Team& team, Key k, const LaneVec<KV>& kv) {
  // Bottom-level variant: DATA lanes vote equality instead of <= (§4.2.1).
  const int dsz = team.dsize();
  const int nxt = team.next_lane();
  const std::uint32_t bal = team.ballot_fn([&](int i) {
    if (i < dsz) return kv_key(kv[i]) == k;
    if (i == nxt) return next_entry_max(kv[i]) < k;
    return false;
  });
  if (bal == 0) return kNone;
  return Team::highest_lane(bal);
}

Gfsl::Guarded Gfsl::search_down(Team& team, Key k) {
  // Algorithm 4.2: lock-free descent through the upper levels.  Returns the
  // level-0 chunk reached by the last down step, with the generation stamp
  // sampled when that ref was extracted (the caller keeps validating).
  std::uint64_t reads = 0;
  for (;;) {  // restart loop (the §4.2.1 lock-freedom edge case)
    LaneVec<KV> prev_kv;
    bool have_prev = false;
    int height = height_coop(team);
    Guarded cur = guard_ref(head_of(team, height));
    bool restart = false;

    while (height > 0) {
      bool stale = false;
      const LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
      ++reads;
      if (stale) {  // chunk recycled under us — the path is garbage
        restart = true;
        break;
      }
      if (is_zombie(team, kv)) {
        // Zombies are skipped laterally; their contents moved right (§4.2.1).
        note_zombie(team, cur.ref);
        cur = guard_ref(next_of(team, kv));
        continue;
      }
      const int step = tid_for_next_step(team, k, kv);
      if (step == team.next_lane()) {  // lateral step
        prev_kv = kv;
        have_prev = true;
        cur = guard_ref(next_of(team, kv));
      } else if (step != kNone) {  // down step
        --height;
        have_prev = false;
        cur = guard_ref(ptr_from_tid(team, step, kv));
      } else {  // backtrack
        if (!have_prev) {
          ++team.counters().restarts;
          team.record(simt::TraceEvent::kRestart, cur.ref, k);
          restart = true;
          break;
        }
        // All keys here are > k; step down through the previous chunk, whose
        // max (its last key) is < k because we stepped laterally past it.
        const std::uint32_t bal = team.ballot_fn([&](int i) {
          return i < team.dsize() && kv_key(prev_kv[i]) <= k;
        });
        --height;
        cur = guard_ref(ptr_from_tid(team, Team::highest_lane(bal), prev_kv));
        have_prev = false;
      }
    }
    if (!restart) {
      traversal_chunk_reads_.fetch_add(reads, std::memory_order_relaxed);
      traversals_.fetch_add(1, std::memory_order_relaxed);
      return cur;
    }
  }
}

bool Gfsl::search_lateral(Team& team, Key k, Guarded start, Value* out_value,
                          bool* stale) {
  // Algorithm 4.4: bottom-level lateral walk to k's enclosing chunk.
  Guarded cur = start;
  std::uint64_t reads = 0;
  for (;;) {
    bool st = false;
    const LaneVec<KV> kv = stale != nullptr
                               ? read_chunk_checked(team, cur, &st)
                               : read_chunk(team, cur.ref);
    ++reads;
    if (st) {  // recycled under us; the caller restarts from the top
      traversal_chunk_reads_.fetch_add(reads, std::memory_order_relaxed);
      *stale = true;
      return false;
    }
    const int found = tid_with_equal_key(team, k, kv);
    if (found == team.next_lane()) {
      cur = guard_ref(next_of(team, kv));
      continue;
    }
    if (is_zombie(team, kv)) {
      note_zombie(team, cur.ref);
      cur = guard_ref(next_of(team, kv));
      continue;
    }
    traversal_chunk_reads_.fetch_add(reads, std::memory_order_relaxed);
    if (found == kNone) return false;
    if (out_value != nullptr) *out_value = kv_value(team.shfl(kv, found));
    return true;
  }
}

bool Gfsl::contains(Team& team, Key k) {
  simt::OpScope scope(team, obs::kContainsOp, k);
  EpochScope epoch(*this, team);
  bool r = false;
  for (;;) {  // generation-stamp staleness restarts the whole traversal
    bool stale = false;
    // A validated foresight hint replaces the whole upper descent with one
    // jump to an at-or-left bottom chunk; any miss takes the classic path.
    // A hinted jump is still one traversal — count it here, where the
    // classic path has search_down do it.
    Guarded start;
    if (foresight_start(team, k, &start)) {
      traversals_.fetch_add(1, std::memory_order_relaxed);
    } else {
      start = search_down(team, k);
    }
    r = search_lateral(team, k, start, nullptr, &stale);
    if (!stale) break;
  }
  epoch.exit();
  scope.set_result(r);
  return r;
}

std::optional<Value> Gfsl::find(Team& team, Key k) {
  simt::OpScope scope(team, obs::kContainsOp, k);
  EpochScope epoch(*this, team);
  Value v{};
  bool r = false;
  for (;;) {
    bool stale = false;
    Guarded start;
    if (foresight_start(team, k, &start)) {
      traversals_.fetch_add(1, std::memory_order_relaxed);
    } else {
      start = search_down(team, k);
    }
    r = search_lateral(team, k, start, &v, &stale);
    if (!stale) break;
  }
  epoch.exit();
  scope.set_result(r);
  if (r) return v;
  return std::nullopt;
}

ChunkRef Gfsl::first_non_zombie(Team& team, const LaneVec<KV>& kv,
                                std::vector<ChunkRef>* skipped, bool* stale) {
  // Follow next pointers until a non-zombie chunk; the last chunk in a level
  // is never a zombie (§4.2.3), so this terminates.  Zombies are frozen
  // (terminal lock state; nobody writes their entries again), so the chain
  // recorded in `skipped` is exactly the chain a subsequent unlink removes.
  // With `stale` the walk is generation-checked: the chain may contain
  // already-unlinked zombies a concurrent reclaim pass could recycle.
  Guarded cur = guard_ref(next_of(team, kv));
  for (;;) {
    bool st = false;
    const LaneVec<KV> nkv = stale != nullptr
                                ? read_chunk_checked(team, cur, &st)
                                : read_chunk(team, cur.ref);
    if (st) {
      *stale = true;
      return NULL_CHUNK;
    }
    if (!is_zombie(team, nkv)) return cur.ref;
    note_zombie(team, cur.ref);
    if (skipped != nullptr) skipped->push_back(cur.ref);
    cur = guard_ref(next_of(team, nkv));
  }
}

void Gfsl::redirect_to_remove_zombie(Team& team, ChunkRef prev, ChunkRef) {
  // Lazy unlinking (§4.2.2): try-lock the predecessor; on failure just move
  // on.  Under the lock, re-resolve the first non-zombie successor — the
  // previously computed one may be stale if prev was split meanwhile.
  // A zombie's lock field is the zombie mark itself, so try_lock can only
  // succeed on a live chunk — once locked, prev cannot be merged away.
  if (!try_lock(team, prev)) return;
  const LaneVec<KV> pkv = read_chunk(team, prev);
  ChunkRef target = next_of(team, pkv);
  bool changed = false;
  std::vector<ChunkRef> chain;  // zombies this swing unlinks
  while (target != NULL_CHUNK) {
    const LaneVec<KV> tkv = read_chunk(team, target);
    if (!is_zombie(team, tkv)) break;
    chain.push_back(target);
    target = next_of(team, tkv);
    changed = true;
  }
  if (changed) {
    atomic_entry_write(team, prev, arena_.next_slot(),
                       make_next_entry(max_of(team, pkv), target));
    // prev's held lock makes this the unique unlink of `chain`: any other
    // unlinker of these zombies must also lock prev, and after our swing
    // they are no longer reachable from it.
    for (const ChunkRef z : chain) retire_chunk(team, z);
  }
  unlock(team, prev);
}

Gfsl::SlowSearchResult Gfsl::search_slow(Team& team, Key k) {
  // Algorithm 4.6: the Contains traversal plus (a) the per-lane path
  // "artificial array" — lane l records the chunk in level l through which
  // the down step was taken — and (b) lazy zombie unlinking.
  std::uint64_t reads = 0;
  for (;;) {
    SlowSearchResult r;
    for (int l = 0; l < simt::kWarpSize; ++l) {
      r.path[l] = (l < max_levels())
                      ? head_[static_cast<std::size_t>(l)].load(
                            std::memory_order_acquire)
                      : NULL_CHUNK;
    }
    team.step();  // the headPtrAtHeight lockstep read

    LaneVec<KV> prev_kv;
    ChunkRef prev_ref = NULL_CHUNK;
    bool have_prev = false;
    int height;
    Guarded cur;
    // A validated foresight hint skips the whole upper descent.  The upper
    // path lanes keep their head-chunk defaults, which the commit halves
    // tolerate explicitly (erase re-reads the height; insert's raise loop
    // walks from the head — raises are rare).
    if (foresight_start(team, k, &cur)) {
      height = 0;
    } else {
      height = height_coop(team);
      cur = guard_ref(head_of(team, height));
    }
    bool restart = false;

    while (height > 0) {
      bool stale = false;
      LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
      ++reads;
      if (stale) {  // chunk recycled under us — the path is garbage
        restart = true;
        break;
      }
      if (is_zombie(team, kv)) {
        note_zombie(team, cur.ref);
        const bool at_head =
            !have_prev && head_[static_cast<std::size_t>(height)].load(
                              std::memory_order_acquire) == cur.ref;
        std::vector<ChunkRef> chain;
        if (at_head) chain.push_back(cur.ref);
        bool chain_stale = false;
        const ChunkRef fnz = first_non_zombie(
            team, kv, at_head ? &chain : nullptr, &chain_stale);
        if (chain_stale) {
          restart = true;
          break;
        }
        if (have_prev) {
          redirect_to_remove_zombie(team, prev_ref, fnz);
        } else if (at_head) {
          // The zombie was the first chunk in the level: swing the head.
          // Zombie next pointers are frozen, so a won CAS from `cur`
          // unlinks exactly `chain` — the unique retire point for it.
          ChunkRef expected = cur.ref;
          mem_->atomic_rmw(head_device_base_ + 256 +
                           static_cast<std::uint64_t>(height) * 4u);
          if (head_[static_cast<std::size_t>(height)].compare_exchange_strong(
                  expected, fnz, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            for (const ChunkRef z : chain) retire_chunk(team, z);
          }
          team.step();
        }
        cur = guard_ref(fnz);
        continue;
      }
      const int step = tid_for_next_step(team, k, kv);
      if (step == team.next_lane()) {  // lateral
        prev_kv = kv;
        prev_ref = cur.ref;
        have_prev = true;
        cur = guard_ref(next_of(team, kv));
      } else if (step != kNone) {  // down
        r.path[height] = cur.ref;
        --height;
        have_prev = false;
        cur = guard_ref(ptr_from_tid(team, step, kv));
      } else {  // backtrack
        if (!have_prev) {
          ++team.counters().restarts;
          team.record(simt::TraceEvent::kRestart, cur.ref, k);
          restart = true;
          break;
        }
        r.path[height] = prev_ref;
        const std::uint32_t bal = team.ballot_fn([&](int i) {
          return i < team.dsize() && kv_key(prev_kv[i]) <= k;
        });
        --height;
        cur = guard_ref(ptr_from_tid(team, Team::highest_lane(bal), prev_kv));
        have_prev = false;
      }
    }
    if (restart) continue;

    // Bottom level: lateral walk with zombie unlinking; the enclosing chunk
    // becomes path[0].
    ChunkRef bprev = NULL_CHUNK;
    for (;;) {
      bool stale = false;
      const LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
      ++reads;
      if (stale) {
        restart = true;
        break;
      }
      if (is_zombie(team, kv)) {
        note_zombie(team, cur.ref);
        // The seed never unlinked a zombified *first* bottom chunk (no
        // predecessor to redirect through), which is harmless when zombies
        // leak but fatal under reclamation: erasing small keys merges the
        // head chunk over and over and the zombie chain pins the pool.
        // With an EpochManager attached, mirror the upper-level head swing;
        // detached, keep the seed's exact step sequence.
        const bool at_head =
            epochs_ != nullptr && bprev == NULL_CHUNK &&
            head_[0].load(std::memory_order_acquire) == cur.ref;
        std::vector<ChunkRef> chain;
        if (at_head) chain.push_back(cur.ref);
        bool chain_stale = false;
        const ChunkRef fnz = first_non_zombie(
            team, kv, at_head ? &chain : nullptr, &chain_stale);
        if (chain_stale) {
          restart = true;
          break;
        }
        if (bprev != NULL_CHUNK) {
          redirect_to_remove_zombie(team, bprev, fnz);
        } else if (at_head) {
          ChunkRef expected = cur.ref;
          mem_->atomic_rmw(head_device_base_ + 256);
          if (head_[0].compare_exchange_strong(expected, fnz,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
            for (const ChunkRef z : chain) retire_chunk(team, z);
          }
          team.step();
        }
        cur = guard_ref(fnz);
        continue;
      }
      const int found = tid_with_equal_key(team, k, kv);
      if (found == team.next_lane()) {
        bprev = cur.ref;
        cur = guard_ref(next_of(team, kv));
        continue;
      }
      r.path[0] = cur.ref;
      r.found = (found != kNone);
      break;
    }
    if (restart) continue;
    traversal_chunk_reads_.fetch_add(reads, std::memory_order_relaxed);
    traversals_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
}

std::size_t Gfsl::scan(Team& team, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>& out,
                       std::size_t limit) {
  if (lo < MIN_USER_KEY) lo = MIN_USER_KEY;
  if (hi > MAX_USER_KEY) hi = MAX_USER_KEY;
  if (lo > hi || limit == 0) return 0;

  simt::OpScope scope(team, obs::kScanOp, lo);
  EpochScope epoch(*this, team);
  const std::size_t start_size = out.size();
  bool done = false;
  while (!done) {  // stale chunk read restarts the whole scan
    out.resize(start_size);
    Guarded cur = search_down(team, lo);
    for (;;) {
      bool stale = false;
      const LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
      if (stale) break;
      if (is_zombie(team, kv)) {
        // Zombie contents moved right; skip without collecting.
        note_zombie(team, cur.ref);
        cur = guard_ref(next_of(team, kv));
        continue;
      }
      // Cooperative in-range vote; entries are sorted within the chunk, so
      // gathering in slot order keeps the output ordered.
      const std::uint32_t in_range = team.ballot_fn([&](int i) {
        if (i >= team.dsize()) return false;
        const Key k = kv_key(kv[i]);
        return k >= lo && k <= hi && k != KEY_NEG_INF && !kv_is_empty(kv[i]);
      });
      bool full = false;
      for (int i = 0; i < team.dsize() && !full; ++i) {
        if ((in_range & (1u << i)) == 0) continue;
        if (out.size() - start_size >= limit) {
          full = true;
          break;
        }
        out.emplace_back(kv_key(kv[i]), kv_value(kv[i]));
      }
      const Key max = max_of(team, kv);
      const ChunkRef nxt = next_of(team, kv);
      if (full || max >= hi || nxt == NULL_CHUNK) {
        done = true;
        break;
      }
      cur = guard_ref(nxt);
    }
  }
  epoch.exit();
  scope.set_value(out.size() - start_size);
  return out.size() - start_size;
}

std::pair<bool, ChunkRef> Gfsl::find_lateral(Team& team, Key k,
                                             ChunkRef start) {
  // Exact-key lateral search usable at any level (Delete's per-level
  // containment probe, updateDownPtrs' upper-level search).
  ChunkRef cur = start;
  for (;;) {
    const LaneVec<KV> kv = read_chunk(team, cur);
    const int found = tid_with_equal_key(team, k, kv);
    if (found == team.next_lane()) {
      cur = next_of(team, kv);
      continue;
    }
    if (is_zombie(team, kv)) {
      note_zombie(team, cur);
      cur = next_of(team, kv);
      continue;
    }
    return {found != kNone, cur};
  }
}

ChunkRef Gfsl::search_down_to_level(Team& team, int target_level, Key k) {
  // Algorithm 4.10's helper: "identical to searchDown except that it
  // searches until level i and not level 0".
  for (;;) {
    LaneVec<KV> prev_kv;
    bool have_prev = false;
    int height = height_coop(team);
    if (height <= target_level) return head_of(team, target_level);
    ChunkRef cur = head_of(team, height);
    bool restart = false;

    while (height > target_level) {
      const LaneVec<KV> kv = read_chunk(team, cur);
      if (is_zombie(team, kv)) {
        note_zombie(team, cur);
        cur = next_of(team, kv);
        continue;
      }
      const int step = tid_for_next_step(team, k, kv);
      if (step == team.next_lane()) {
        prev_kv = kv;
        have_prev = true;
        cur = next_of(team, kv);
      } else if (step != kNone) {
        --height;
        have_prev = false;
        cur = ptr_from_tid(team, step, kv);
      } else {
        if (!have_prev) {
          ++team.counters().restarts;
          team.record(simt::TraceEvent::kRestart, cur, k);
          restart = true;
          break;
        }
        const std::uint32_t bal = team.ballot_fn([&](int i) {
          return i < team.dsize() && kv_key(prev_kv[i]) <= k;
        });
        --height;
        cur = ptr_from_tid(team, Team::highest_lane(bal), prev_kv);
        have_prev = false;
      }
    }
    if (!restart) return cur;
  }
}

}  // namespace gfsl::core
