// Construction and the cooperative building blocks shared by all operations.
#include "core/gfsl.h"

#include <stdexcept>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

namespace {
// The region reserves fixed strides for the sections core places into it;
// a drift in either constant would silently corrupt a restart image.
static_assert(sizeof(IntentSlot) <= device::PersistRegion::kIntentSlotBytes);
static_assert(Gfsl::kMaxLevels == device::PersistRegion::kMaxLevels);
static_assert(sched::LeaseTable::kMaxTeams ==
              static_cast<int>(device::PersistRegion::kMaxTeams));
static_assert(std::atomic<ChunkRef>::is_always_lock_free);
static_assert(sizeof(std::atomic<ChunkRef>) == sizeof(ChunkRef));
}  // namespace

Gfsl::Gfsl(const GfslConfig& cfg, device::DeviceMemory* mem,
           sched::StepScheduler* scheduler, sched::LeaseTable* leases,
           device::EpochManager* epochs, device::PersistRegion* region,
           SnapshotManager* snaps, ForesightIndex* foresight,
           IntegritySidecar* integrity)
    : cfg_(cfg),
      mem_(mem),
      sched_(scheduler),
      leases_(leases),
      epochs_(epochs),
      region_(region),
      snaps_(snaps),
      foresight_(foresight),
      integrity_(integrity),
      // The per-chunk level byte gates version stamping (snapshots) and
      // tells the integrity scrub which repair strategy applies.
      chunk_level_((snaps == nullptr && integrity == nullptr)
                       ? nullptr
                       : new std::uint8_t[cfg.pool_chunks]()),
      commit_ctx_(snaps == nullptr
                      ? nullptr
                      : new CommitCtx[SnapshotManager::kCommitSlots]()),
      intents_own_((leases == nullptr || region != nullptr)
                       ? nullptr
                       : new IntentSlot[sched::LeaseTable::kMaxTeams]),
      intents_(nullptr),
      arena_(cfg.team_size, cfg.pool_chunks, region) {
  if (mem_ == nullptr) throw std::invalid_argument("DeviceMemory required");
  if (cfg_.team_size < 8 || cfg_.team_size > 32 ||
      (cfg_.team_size & (cfg_.team_size - 1)) != 0) {
    throw std::invalid_argument("team size must be 8, 16 or 32");
  }
  if (cfg_.p_chunk < 0.0 || cfg_.p_chunk > 1.0) {
    throw std::invalid_argument("p_chunk must be in [0, 1]");
  }
  if (region_ != nullptr && leases_ == nullptr) {
    // Without leases a crash image would hold unattributable locks that no
    // recovery pass may ever steal.
    throw std::invalid_argument("a persist region requires a LeaseTable");
  }
  if (integrity_ != nullptr) integrity_->bind(arena_.capacity());
  if (snaps_ != nullptr) {
    if (snaps_->pool_chunks() < cfg_.pool_chunks) {
      // The per-chunk chain-head array must cover every ChunkRef.
      throw std::invalid_argument("SnapshotManager sized for a smaller pool");
    }
    if (region_ != nullptr) {
      snaps_->attach_durable(static_cast<std::atomic<std::uint64_t>*>(
          region_->durable_rev()));
    }
  }
  if (region_ != nullptr) {
    head_ = static_cast<std::atomic<ChunkRef>*>(region_->level_heads());
    auto* islots = static_cast<char*>(region_->intent_slots());
    if (region_->fresh()) {
      for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
        new (islots + static_cast<std::size_t>(id) * sizeof(IntentSlot))
            IntentSlot();
      }
    }
    intents_ = reinterpret_cast<IntentSlot*>(islots);
  } else {
    head_ = head_own_.data();
    intents_ = intents_own_.get();
  }
  // The head array lives after the chunk pool in the synthetic device
  // address space so it maps to its own cache lines.
  head_device_base_ =
      arena_.device_address(arena_.capacity());

  if (region_ != nullptr && !region_->fresh()) {
    // Attach: the mapped image IS the structure.  Heads, chunks, intents and
    // leases are adopted as stored; the volatile per-level gauges are
    // rebuilt by recover(), which the caller must run before serving.
    for (int level = 0; level < kMaxLevels; ++level) {
      level_chunks_[static_cast<std::size_t>(level)].store(
          0, std::memory_order_relaxed);
    }
    return;
  }
  if (!arena_.can_alloc(static_cast<std::uint32_t>(max_levels()))) {
    throw std::invalid_argument("pool too small for initial head chunks");
  }

  // §4.1: "The structure initially consists of a single unlocked chunk in
  // each level, containing the -inf key and a pointer to the chunk in the
  // level below."  Build bottom-up so each level links to the one below.
  ChunkRef below = NULL_CHUNK;
  for (int level = 0; level < max_levels(); ++level) {
    const ChunkRef ch = arena_.alloc_locked();
    set_chunk_level(ch, level);
    const Value down = (level == 0) ? Value{0} : static_cast<Value>(below);
    arena_.entry(ch, 0).store(make_kv(KEY_NEG_INF, down),
                              std::memory_order_relaxed);
    arena_.entry(ch, arena_.lock_slot())
        .store(make_lock_entry(kUnlocked), std::memory_order_release);
    head_[static_cast<std::size_t>(level)].store(ch, std::memory_order_relaxed);
    level_chunks_[static_cast<std::size_t>(level)].store(
        0, std::memory_order_relaxed);
    below = ch;
  }
  for (int level = max_levels(); level < kMaxLevels; ++level) {
    head_[static_cast<std::size_t>(level)].store(NULL_CHUNK,
                                                 std::memory_order_relaxed);
    level_chunks_[static_cast<std::size_t>(level)].store(
        0, std::memory_order_relaxed);
  }
  // The head chunks above were published unlocked by direct stores, not
  // through unlock() — give them their initial seals.
  reseal_all();
}

void Gfsl::sync_point(Team& team) {
  if (sched_ != nullptr) sched_->yield(team.id());
  team.sync();
}

LaneVec<KV> Gfsl::read_chunk(Team& team, ChunkRef ref) {
  // One lockstep instruction: every lane loads its own entry.  The whole
  // chunk is contiguous, so the access coalesces into chunk_bytes/128
  // transactions (1 for N=16, 2 for N=32 — §5.2 "Chunk Size").
  sync_point(team);
  LaneVec<KV> kv;
  const std::atomic<KV>* e = arena_.entries(ref);
  for (int i = 0; i < team.size(); ++i) {
    kv[i] = e[i].load(std::memory_order_acquire);
  }
  mem_->warp_read(arena_.device_address(ref), arena_.chunk_bytes());
  team.step();
  return kv;
}

bool Gfsl::is_zombie(Team& team, const LaneVec<KV>& kv) {
  const KV lock_kv = team.shfl(kv, team.lock_lane());
  return lock_entry_state(lock_kv) == kZombie;
}

bool Gfsl::is_locked_or_zombie(Team& team, const LaneVec<KV>& kv) {
  const KV lock_kv = team.shfl(kv, team.lock_lane());
  return lock_entry_state(lock_kv) != kUnlocked;
}

ChunkRef Gfsl::ptr_from_tid(Team& team, int lane, const LaneVec<KV>& kv) {
  return static_cast<ChunkRef>(kv_value(team.shfl(kv, lane)));
}

Key Gfsl::max_of(Team& team, const LaneVec<KV>& kv) {
  return next_entry_max(team.shfl(kv, team.next_lane()));
}

ChunkRef Gfsl::next_of(Team& team, const LaneVec<KV>& kv) {
  return next_entry_ref(team.shfl(kv, team.next_lane()));
}

int Gfsl::num_nonempty(Team& team, const LaneVec<KV>& kv) {
  const std::uint32_t bal = team.ballot_fn(
      [&](int i) { return i < team.dsize() && !kv_is_empty(kv[i]); });
  return Team::popc(bal);
}

bool Gfsl::chunk_contains(Team& team, const LaneVec<KV>& kv, Key k) {
  const std::uint32_t bal = team.ballot_fn(
      [&](int i) { return i < team.dsize() && kv_key(kv[i]) == k; });
  return bal != 0;
}

bool Gfsl::chunk_not_enclosing(Team& team, const LaneVec<KV>& kv, Key k) {
  // An enclosing chunk is "the first non-zombie chunk in the level with a
  // max field greater or equal to k" (§4.1).
  return is_zombie(team, kv) || max_of(team, kv) < k;
}

int Gfsl::height_coop(Team& team) {
  // Cooperative getHeight: lane l checks whether level l is in use, then a
  // ballot picks the highest such level (§4.2.1).
  sync_point(team);
  const int levels = max_levels();
  const std::uint32_t bal = team.ballot_fn([&](int i) {
    return i > 0 && i < levels &&
           level_chunks_[static_cast<std::size_t>(i)].load(
               std::memory_order_acquire) > 0;
  });
  mem_->warp_read(head_device_base_, static_cast<std::uint32_t>(levels) * 4u);
  const int h = Team::highest_lane(bal);
  return h < 0 ? 0 : h;
}

ChunkRef Gfsl::head_of(Team& team, int level) {
  sync_point(team);
  mem_->warp_read(head_device_base_ + 256 + static_cast<std::uint64_t>(level) * 4u,
                  4u);
  team.step();
  return head_[static_cast<std::size_t>(level)].load(std::memory_order_acquire);
}

bool Gfsl::try_lock(Team& team, ChunkRef ref) {
  // The LOCK lane CASes the lock entry; the whole team observes the result.
  // With a LeaseTable attached the acquisition stamps this team's lease word
  // into the entry's value half — on the uncontended path that is the whole
  // cost of crash tolerance: one extra (relaxed) load to fetch the word.
  sync_point(team);
  mem_->atomic_rmw(arena_.entry_address(ref, arena_.lock_slot()));
  KV expected = make_lock_entry(kUnlocked);
  const bool ok =
      arena_.entry(ref, arena_.lock_slot())
          .compare_exchange_strong(
              expected, make_lock_entry(kLocked, lease_word(team)),
              std::memory_order_acq_rel, std::memory_order_acquire);
  team.step();
  if (ok) {
    persist_point();
    ++team.counters().lock_acquires;
    team.note_lock_acquired(ref);
    team.record(simt::TraceEvent::kLockAcquired, ref);
  } else {
    ++team.counters().lock_spins;
    team.record(simt::TraceEvent::kLockFailed, ref);
  }
  return ok;
}

void Gfsl::unlock(Team& team, ChunkRef ref) {
  team.note_lock_released(ref);
  team.record(simt::TraceEvent::kUnlock, ref);
  sync_point(team);
  // Seal before the releasing store: every data-slot mutation happens under
  // this lock, so "unlocked" must imply "seal matches contents".
  stamp_seal(team, ref);
  mem_->lane_write(arena_.entry_address(ref, arena_.lock_slot()), 8);
  arena_.entry(ref, arena_.lock_slot())
      .store(make_lock_entry(kUnlocked), std::memory_order_release);
  persist_point();
  team.step();
}

void Gfsl::note_zombie(Team& team, ChunkRef ref) {
  team.metric(obs::kZombieEncounters);
  team.record(simt::TraceEvent::kZombieSkipped, ref);
}

void Gfsl::mark_zombie(Team& team, ChunkRef ref) {
  team.note_lock_released(ref);  // zombies stay marked; the hold ends here
  team.record(simt::TraceEvent::kZombieMarked, ref);
  // Terminal state: "the contents of a chunk are never changed after it
  // becomes a zombie" (§4.3); zombies are never unlocked.
  sync_point(team);
  mem_->lane_write(arena_.entry_address(ref, arena_.lock_slot()), 8);
  arena_.entry(ref, arena_.lock_slot())
      .store(make_lock_entry(kZombie), std::memory_order_release);
  persist_point();
  team.step();
}

void Gfsl::write_entry(Team& team, ChunkRef ref, int slot, KV v) {
  sync_point(team);
  mem_->lane_write(arena_.entry_address(ref, slot), 8);
  arena_.entry(ref, slot).store(v, std::memory_order_release);
  // Every mutating span publish (shifts, NEXT rewrites, down swings, frozen
  // copies) flows through this store — the persist point right after it is
  // the single hook that makes each one individually crash-atomic.
  persist_point();
  team.step();
}

void Gfsl::atomic_entry_write(Team& team, ChunkRef ref, int slot, KV v) {
  // 64-bit entry stores are naturally atomic on the device; modeled as a
  // single-lane write plus one instruction.
  write_entry(team, ref, slot, v);
}

ChunkRef Gfsl::find_and_lock_enclosing(Team& team, ChunkRef start, Key k) {
  // Algorithm 4.8: lateral spin-search until the enclosing chunk is locked.
  // The spin on a held lock is bounded: each failed round probes the
  // holder's lease (an expired holder is repaired and its lock stolen) and
  // backs off exponentially; after kSpinFallback rounds the team abandons
  // the position and re-walks laterally from `start`, so a slow holder can
  // delay it but never pin it to one chunk.  `start` stays walkable because
  // the caller's epoch pin (or, without an EpochManager, the absence of any
  // reclamation) keeps every chunk it reached from being recycled.
  ChunkRef ch = start;
  int spins = 0;
  for (;;) {
    LaneVec<KV> kv = read_chunk(team, ch);
    if (chunk_not_enclosing(team, kv, k)) {
      ch = next_of(team, kv);
      continue;
    }
    if (is_locked_or_zombie(team, kv)) {
      if (maybe_recover(team, ch, team.shfl(kv, team.lock_lane()))) continue;
      if (++spins >= kSpinFallback) {
        spins = 0;
        ch = start;
        team.metric(obs::kLockRetraversals);
        continue;
      }
      backoff(team, spins);
      continue;
    }
    if (!try_lock(team, ch)) continue;
    spins = 0;
    kv = read_chunk(team, ch);
    if (chunk_not_enclosing(team, kv, k)) {
      // Lost a race (split/merge moved k's range right); release and chase.
      unlock(team, ch);
      ch = next_of(team, kv);
      continue;
    }
    return ch;
  }
}

ChunkRef Gfsl::lock_next_chunk(Team& team, ChunkRef locked) {
  // Lock the next non-zombie chunk after `locked` (whose lock this team
  // holds).  Zombies found on the way are unlinked — legal because only the
  // holder of `locked`'s lock may rewrite its next pointer.
  int spins = 0;
  for (;;) {
    const KV next_kv = arena_.entry(locked, arena_.next_slot())
                           .load(std::memory_order_acquire);
    const ChunkRef nxt = next_entry_ref(next_kv);
    if (nxt == NULL_CHUNK) return NULL_CHUNK;
    const LaneVec<KV> kv = read_chunk(team, nxt);
    if (is_zombie(team, kv)) {
      note_zombie(team, nxt);
      const ChunkRef after = next_of(team, kv);
      atomic_entry_write(team, locked, arena_.next_slot(),
                         make_next_entry(next_entry_max(next_kv), after));
      // The write above was nxt's unique unlink (performed under `locked`'s
      // held lock): retire it.
      retire_chunk(team, nxt);
      continue;
    }
    if (is_locked_or_zombie(team, kv)) {
      // Spin on a locked neighbor — bounded: probe the holder's lease and
      // back off (saturating; there is no other chunk to fall back to, the
      // successor is dictated by the list).
      if (maybe_recover(team, nxt, team.shfl(kv, team.lock_lane()))) continue;
      backoff(team, ++spins);
      continue;
    }
    if (try_lock(team, nxt)) return nxt;
  }
}

void Gfsl::bump_level(int level, std::int64_t delta) {
  level_chunks_[static_cast<std::size_t>(level)].fetch_add(
      delta, std::memory_order_acq_rel);
}

int Gfsl::current_height() const {
  for (int l = max_levels() - 1; l > 0; --l) {
    if (level_chunks_[static_cast<std::size_t>(l)].load(
            std::memory_order_acquire) > 0) {
      return l;
    }
  }
  return 0;
}

double Gfsl::avg_chunks_per_traversal() const {
  const auto t = traversals_.load(std::memory_order_relaxed);
  if (t == 0) return 0.0;
  return static_cast<double>(
             traversal_chunk_reads_.load(std::memory_order_relaxed)) /
         static_cast<double>(t);
}

}  // namespace gfsl::core
