// GFSL — the GPU-Friendly Skiplist (the paper's contribution, Chapters 3-4).
//
// GFSL is a fine-grained lock-based skiplist made of levels of chunked linked
// lists.  A *team* of N lanes executes each operation cooperatively: every
// lane reads one chunk entry, the team ballots on the comparison results and
// decides the next traversal step together.  Contains is lock-free; Insert
// and Delete lock the affected chunks (bottom-level lock held for the whole
// operation, upper-level locks taken lock-update-unlock, §4.2.2/§4.2.3).
//
// A key is raised to level i+1 only when a chunk split occurs in level i,
// with probability p_chunk (§3), which ties the level fan-out to the chunk
// capacity instead of to individual keys.
//
// Execution/measurement context: all global-memory traffic flows through a
// device::DeviceMemory (coalescing + L2 model) and, optionally, every memory
// step is a sched::StepScheduler yield point so tests can replay exact
// interleavings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/batch.h"
#include "core/chunk.h"
#include "core/foresight.h"
#include "core/integrity.h"
#include "core/intent.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::core {

struct GfslConfig {
  /// Team size == chunk entry count N.  The paper evaluates 16 (128 B chunks,
  /// one transaction) and 32 (256 B chunks, two transactions); 8 is supported
  /// for tests.
  int team_size = 32;
  /// Total chunks in the device memory pool.
  std::uint32_t pool_chunks = 1u << 20;
  /// Probability that a split raises a key to the next level (§3, §5.2:
  /// "p_chunk ≈ 1 ... gave the best results in all operation mixtures").
  double p_chunk = 1.0;
};

/// Result of a quiescent structural check (no concurrent teams may run).
struct ValidationReport {
  bool ok = true;
  std::string error;             // first violated invariant, if any
  int height = 0;                // levels in use above the bottom
  std::uint64_t bottom_keys = 0; // user keys in the bottom level
  std::uint64_t live_chunks = 0;
  std::uint64_t zombie_chunks = 0;
  std::uint64_t data_entries = 0;  // occupied data slots in live chunks —
                                   // the occupancy gauge's numerator
  std::uint64_t limbo_chunks = 0;  // retired, awaiting their grace period
  std::uint64_t free_chunks = 0;   // recycled onto the arena free-list
};

/// Result of Gfsl::recover() — the whole-process restart pass.
struct RecoveryReport {
  bool ok = true;
  std::string error;          // first failure, if any
  int locks_released = 0;     // dead-owned locks the medic sweep released
  int intents_repaired = 0;   // claimable intents found published at attach
  std::uint64_t chunks_freed = 0;    // indices moved to the rebuilt free-list
  std::uint64_t stale_keys_scrubbed = 0;  // upper-level keys with no home below
  std::uint64_t chunks_unlinked = 0;      // upper chunks emptied by the scrub
  std::uint64_t generations_repaired = 0;  // reachable odd stamps bumped even
  ValidationReport validation;  // the strict post-recovery check
};

/// Exact key range a quarantine lost: every key in (lo_exclusive,
/// hi_inclusive] that was resident in the damaged chunk is gone from the
/// structure.  Reported instead of a silent wrong answer.
struct LostRange {
  ChunkRef ref = NULL_CHUNK;
  Key lo_exclusive = KEY_NEG_INF;
  Key hi_inclusive = KEY_NEG_INF;
};

/// Result of one Gfsl::scrub_pass() (scrub.cpp; DESIGN.md §15).
struct ScrubReport {
  std::uint64_t chunks_scanned = 0;   // sealed chunks visited
  std::uint64_t mismatches = 0;       // seal failures confirmed under lock
  std::uint64_t repaired = 0;         // damaged chunks rebuilt in place
  std::uint64_t quarantined = 0;      // damaged chunks zombified/evacuated
  std::uint64_t skipped_busy = 0;     // suspects left for a later pass (lock contention)
  std::vector<LostRange> lost;        // blast radii of irreparable damage
};

class Gfsl {
 public:
  static constexpr int kMaxLevels = 32;  // hard bound; runtime bound = team size

  /// `mem` must outlive the structure; `scheduler` may be null (free-running).
  /// `leases` may be null: then locks are anonymous (seed semantics, zero
  /// overhead).  With a LeaseTable attached, every lock acquisition stamps
  /// the holder's lease word, every destructive span publishes an intent
  /// descriptor, and a team that spins on a lock whose owner's lease expired
  /// repairs the half-done mutation and steals the lock (crash tolerance).
  /// `epochs` may be null: then unlinked zombies leak until compact() — the
  /// paper's semantics, bit-identical to the seed.  With an EpochManager
  /// attached every operation pins an epoch, unlinked zombies are retired to
  /// limbo, and their indices are recycled through the arena free-list after
  /// a grace period (DESIGN.md §9) — churn workloads run in bounded memory.
  /// `region` may be null: no byte of persistence machinery runs (seed
  /// semantics).  With a device::PersistRegion attached (which requires a
  /// LeaseTable), every durable word — chunk slots, generation stamps,
  /// free-list, level heads, intents, leases — lives in the mapped file and
  /// every durable transition crosses a persist point (DESIGN.md §12).  A
  /// *fresh* region builds the usual empty structure; an *attached* region
  /// adopts the stored image and the caller MUST run recover() before any
  /// operation.
  /// `snaps` may be null: no versioning, bit-identical to the seed.  With a
  /// SnapshotManager attached every bottom-level mutation commits under a
  /// revision and stamps version records, snapshot()/scan_at() serve
  /// point-in-time-consistent range scans, and the version chains are GC'd
  /// down to the min-snapshot watermark (DESIGN.md §13).
  /// `foresight` may be null: every operation descends from the head (seed
  /// semantics, bit-identical).  With a ForesightIndex attached, per-op
  /// contains/find/insert/erase and the batch engine's cold descents consult
  /// the published hint table and jump straight to a validated bottom-level
  /// chunk, falling back to the classic descent on any generation mismatch
  /// or zombie hit (DESIGN.md §14).  The table is rebuilt lazily, under the
  /// consulting operation's epoch pin, once enough split/merge/recycle
  /// events have accumulated.
  /// `integrity` may be null: no seal is ever computed or checked
  /// (bit-identical to the seed).  With an IntegritySidecar attached every
  /// lock release restamps the chunk's data-slot checksum, checked reads
  /// verify it on their cold path, and scrub_pass() detects, repairs or
  /// quarantines damaged chunks online (DESIGN.md §15).
  Gfsl(const GfslConfig& cfg, device::DeviceMemory* mem,
       sched::StepScheduler* scheduler = nullptr,
       sched::LeaseTable* leases = nullptr,
       device::EpochManager* epochs = nullptr,
       device::PersistRegion* region = nullptr,
       SnapshotManager* snaps = nullptr,
       ForesightIndex* foresight = nullptr,
       IntegritySidecar* integrity = nullptr);

  Gfsl(const Gfsl&) = delete;
  Gfsl& operator=(const Gfsl&) = delete;

  // --- Operations (each executed cooperatively by `team`) -------------------

  /// Lock-free membership test (§4.2.1).
  bool contains(simt::Team& team, Key k);

  /// Lock-free lookup returning the value stored with `k`.
  std::optional<Value> find(simt::Team& team, Key k);

  /// Insert <k, v>; false if `k` is already present (§4.2.2).
  bool insert(simt::Team& team, Key k, Value v);

  /// Remove `k`; false if not present (§4.2.3).  Never fails on pool
  /// exhaustion: if an underfull-chunk merge cannot allocate its receiver
  /// split, the removal completes merge-free and tolerates the underfull
  /// chunk — an erase is all-or-nothing, never partially applied.
  bool erase(simt::Team& team, Key k);

  /// Lock-free cooperative range scan (extension): append up to `limit`
  /// pairs with keys in [lo, hi] to `out`, in ascending key order.  The
  /// chunked layout makes this a sequence of coalesced chunk reads — the
  /// ordered-scan operation key-value stores need from their memtables.
  ///
  /// Consistency contract (best-effort / "legacy" scan): the result is NOT a
  /// point-in-time snapshot.  Each visited chunk is internally consistent
  /// (seqlock-checked read), and any key present in [lo, hi] for the *whole*
  /// scan is returned, but keys inserted or erased concurrently may or may
  /// not appear, a concurrent split/merge can restart the scan from `lo`,
  /// and two keys in the result may never have coexisted.  For a consistent
  /// cut use snapshot() + scan_at(), which resolves every key as-of one
  /// revision and never restarts mid-range.
  std::size_t scan(simt::Team& team, Key lo, Key hi,
                   std::vector<std::pair<Key, Value>>& out,
                   std::size_t limit = SIZE_MAX);

  // --- MVCC snapshots (snapshot.cpp; DESIGN.md §13) -------------------------

  /// Take a snapshot at the newest stable revision.  Never blocks; O(1).
  /// Returns a closed handle when no SnapshotManager is attached.  The
  /// caller must release_snapshot() — an unreleased snapshot pins version
  /// records (GC watermark) until the lagging-snapshot policy expires it.
  Snapshot snapshot();
  void release_snapshot(Snapshot& s);

  /// Consistent ordered range scan as-of `s`: append up to `limit` pairs
  /// with keys in [lo, hi] resolved at revision s.rev, ascending.  Never
  /// restarts from `lo` — concurrent splits/merges only cause a bounded
  /// re-descend to the current position (keys only move forward between
  /// chunks, so the monotone key watermark never misses one).  Returns
  /// kSnapshotExpired without touching `out`'s tail when `s` was released,
  /// expired by the lagging-snapshot policy, or invalidated by a store
  /// generation bump (compact / bulk_load / record-arena overflow).
  ScanAtStatus scan_at(simt::Team& team, const Snapshot& s, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>& out,
                       std::size_t limit = SIZE_MAX);

  SnapshotManager* snapshots() const { return snaps_; }

  // --- Batch execution (batch.cpp; DESIGN.md §10) ---------------------------
  // Cursor-carrying variants of contains/insert/erase for key-sorted shard
  // execution.  Keys must be presented to one cursor in ascending order
  // (batch_search falls back to a cold descent — and re-warms — otherwise).
  // Semantics are identical to the per-op API.

  bool contains_batch(simt::Team& team, Key k, BatchCursor& cur);
  bool insert_batch(simt::Team& team, Key k, Value v, BatchCursor& cur);
  bool erase_batch(simt::Team& team, Key k, BatchCursor& cur);

  /// Execute ops[order[begin..end)] — one key-range shard of a planned batch
  /// (sched::plan_shards) — with a single epoch pin for the whole shard
  /// (refreshed every kBatchPinRefresh ops so a long shard cannot stall
  /// reclamation) and a warm descent cursor.  Outcomes land in
  /// `outcomes[order[i]]` as BatchOpStatus codes; pool exhaustion marks the
  /// op kSkipped and continues.  `observer`, when non-null, brackets every
  /// op (crash-sweep history logging).  A scheduler kill (TeamKilled)
  /// propagates after a silent unpin.  `batch_rev`, when non-zero, is the
  /// whole-batch revision (SnapshotManager::begin_commit on a batch slot
  /// held by the caller across every shard): all mutations of the batch
  /// stamp it, so snapshots see none or all of the batch.
  ShardExecStats execute_shard(simt::Team& team, const Op* ops,
                               const std::uint32_t* order, std::uint32_t begin,
                               std::uint32_t end, std::uint8_t* outcomes,
                               BatchOpObserver* observer = nullptr,
                               Rev batch_rev = 0);

  // --- Configuration & quiescent introspection ------------------------------

  const GfslConfig& config() const { return cfg_; }
  int team_size() const { return cfg_.team_size; }
  int max_levels() const { return cfg_.team_size; }

  /// Highest level currently in use (0 = only the bottom level).
  int current_height() const;

  std::uint32_t chunks_allocated() const { return arena_.allocated(); }
  std::int64_t chunks_in_level(int level) const {
    return level_chunks_[static_cast<std::size_t>(level)].load(
        std::memory_order_relaxed);
  }

  /// Quiescent: collect all <key, value> pairs in the bottom level, sorted.
  std::vector<std::pair<Key, Value>> collect() const;

  /// Quiescent: number of user keys in the structure.
  std::uint64_t size() const;

  /// Quiescent structural validation.  `strict` additionally requires every
  /// upper-level key to exist in the level below (holds after sequential
  /// histories; concurrent deletes may legally leave stale upper keys).
  ValidationReport validate(bool strict = true) const;

  /// Between-kernel compaction (the thesis's future-work reclamation scheme,
  /// §4.1): rebuilds the structure densely into the start of the pool,
  /// discarding zombies and reclaiming all chunk memory.  Quiescent only.
  void compact();

  /// Host-side bulk construction from sorted, distinct pairs (the untimed
  /// initial-structure setup of §5.1).  Replaces the current contents.
  /// Quiescent only.
  void bulk_load(const std::vector<std::pair<Key, Value>>& sorted_pairs);

 private:
  /// bulk_load minus the arena reset: build a dense structure from whatever
  /// the arena can allocate.  compact() with an EpochManager recycles every
  /// in-use chunk first and rebuilds through the free-list, so generation
  /// stamps survive (a reset would forget which indices parked readers may
  /// still compare against).
  void rebuild(const std::vector<std::pair<Key, Value>>& sorted_pairs);

 public:

  /// Average number of chunks read per traversal since construction — the
  /// §5.2 metric ("between structure-height+1 and structure-height+2").
  double avg_chunks_per_traversal() const;

  /// Quiescent: render the structure level by level for debugging
  /// (chunk refs, lock states, key ranges, down pointers).
  void dump(std::ostream& os) const;

  const ChunkArena& arena() const { return arena_; }
  sched::LeaseTable* leases() const { return leases_; }
  device::EpochManager* epochs() const { return epochs_; }
  device::PersistRegion* region() const { return region_; }
  ForesightIndex* foresight() const { return foresight_; }
  IntegritySidecar* integrity() const { return integrity_; }

  // --- Integrity scrub (scrub.cpp; DESIGN.md §15) ---------------------------

  /// One online scrub pass under an epoch pin (modeled on reclaim_pass):
  /// walk up to `max_chunks` in-use sealed chunks (0 = the whole arena),
  /// re-verify each suspect or visited seal under try_lock — where the
  /// unlocked-implies-sealed invariant is exact — and resolve every
  /// confirmed mismatch: repair in place (upper chunks rebuild from the
  /// level below; bottom chunks restore from the version-record chain iff
  /// the restored image re-hashes to the stored seal) or quarantine
  /// (zombify + unseal + lazy unlink through the §9 retire machinery) with
  /// an exact blast-radius entry in the report.  A chunk that fails its
  /// seal again after a prior repair (a stuck-at cell) is quarantined, not
  /// re-repaired.  No-op without an attached sidecar.
  ScrubReport scrub_pass(simt::Team& team, std::uint32_t max_chunks = 0);

  /// Quiescent full restamp: seal every unlocked in-use chunk, unseal free
  /// and zombie ones.  Run after any offline rewrite (construction,
  /// bulk_load, compact, recover).  No-op without a sidecar.
  void reseal_all();

  /// Build and publish the foresight hint table now (quiescent; e.g. right
  /// after bulk_load) so measured traffic starts hinted instead of paying
  /// the lazy first rebuild mid-run.  No-op when no index is attached.
  void foresight_prime(simt::Team& team);

  /// Whole-process restart recovery (persist_recovery.cpp; DESIGN.md §12).
  /// Quiescent, offline: call on a structure constructed over an *attached*
  /// PersistRegion before serving any operation.  Marks every persisted
  /// lease crashed, replays the §8 intent repairs against the expired
  /// leases, releases every dead lock, scrubs upper-level keys whose bottom
  /// home vanished, rebuilds the tagged free-list from the generation
  /// stamps (live/zombie/limbo/free classification per validate()'s rules —
  /// an odd-generation chunk is always free, never live), rebuilds the
  /// per-level chunk gauges, resets the lease table to its canonical state
  /// and finishes with a *strict* validate().  Idempotent: a second run — or
  /// a re-run after a recoverer was itself killed mid-repair — converges to
  /// the bit-identical image.
  RecoveryReport recover();

  /// Chunks recycled into the arena free-list since construction.
  std::uint64_t chunks_reclaimed() const {
    return chunks_reclaimed_.load(std::memory_order_relaxed);
  }

  /// Medic sweep (recovery.cpp): repair every published intent and release
  /// every chunk lock whose owner's lease has expired.  Run after a crash
  /// campaign, before quiescent validation; survivors recover organically,
  /// this catches locks nobody happened to spin on.  Returns the number of
  /// locks released.
  int recover_all_expired(simt::Team& team);

 private:
  // ---- cooperative building blocks (gfsl.cpp) ----
  simt::LaneVec<KV> read_chunk(simt::Team& team, ChunkRef ref);
  /// A chunk reference paired with the generation stamp sampled when the
  /// reference was acquired (guard_ref).  Checked reads validate against
  /// this sample, so a recycle — or a completed recycle+reuse, which
  /// restores a consistent even stamp — between acquisition and read is
  /// detected, not just a recycle that lands mid-read.
  struct Guarded {
    ChunkRef ref = NULL_CHUNK;
    std::uint32_t gen = 0;
  };
  /// Sample `ref`'s generation at acquisition time.  Call it where the ref
  /// value is extracted from its (already validated) source chunk, with no
  /// yield point in between; with no EpochManager stamps never change and
  /// the load is skipped.
  Guarded guard_ref(ChunkRef ref) const {
    return {ref, (epochs_ != nullptr && ref != NULL_CHUNK)
                     ? arena_.generation(ref, std::memory_order_acquire)
                     : 0u};
  }
  /// read_chunk plus generation-stamp validation (seqlock read) against the
  /// acquisition-time sample in `g`.  With an EpochManager attached,
  /// `*stale` is set when the chunk was recycled (or recycled and reused)
  /// at any point since guard_ref sampled it — the caller must restart its
  /// traversal; detached, stamps never change and this is read_chunk.
  simt::LaneVec<KV> read_chunk_checked(simt::Team& team, Guarded g,
                                       bool* stale);
  void sync_point(simt::Team& team);
  bool is_zombie(simt::Team& team, const simt::LaneVec<KV>& kv);
  bool is_locked_or_zombie(simt::Team& team, const simt::LaneVec<KV>& kv);
  ChunkRef ptr_from_tid(simt::Team& team, int lane, const simt::LaneVec<KV>& kv);
  Key max_of(simt::Team& team, const simt::LaneVec<KV>& kv);
  ChunkRef next_of(simt::Team& team, const simt::LaneVec<KV>& kv);
  int num_nonempty(simt::Team& team, const simt::LaneVec<KV>& kv);
  bool chunk_contains(simt::Team& team, const simt::LaneVec<KV>& kv, Key k);
  bool chunk_not_enclosing(simt::Team& team, const simt::LaneVec<KV>& kv, Key k);

  int height_coop(simt::Team& team);
  ChunkRef head_of(simt::Team& team, int level);

  bool try_lock(simt::Team& team, ChunkRef ref);
  void unlock(simt::Team& team, ChunkRef ref);
  void mark_zombie(simt::Team& team, ChunkRef ref);
  /// Telemetry: a traversal ran into zombie `ref` and had to skip it.
  void note_zombie(simt::Team& team, ChunkRef ref);
  ChunkRef find_and_lock_enclosing(simt::Team& team, ChunkRef start, Key k);
  /// Lock the next non-zombie chunk after `locked` (whose lock we hold),
  /// unlinking zombies on the way; NULL_CHUNK if `locked` is last in level.
  ChunkRef lock_next_chunk(simt::Team& team, ChunkRef locked);

  void write_entry(simt::Team& team, ChunkRef ref, int slot, KV v);
  void atomic_entry_write(simt::Team& team, ChunkRef ref, int slot, KV v);

  void bump_level(int level, std::int64_t delta);

  // ---- traversal (search.cpp) ----
  static constexpr int kNone = -1;
  int tid_for_next_step(simt::Team& team, Key k, const simt::LaneVec<KV>& kv);
  int tid_with_equal_key(simt::Team& team, Key k, const simt::LaneVec<KV>& kv);
  Guarded search_down(simt::Team& team, Key k);
  bool search_lateral(simt::Team& team, Key k, Guarded start, Value* out_value,
                      bool* stale = nullptr);

  struct SlowSearchResult {
    bool found = false;
    simt::LaneVec<ChunkRef> path;  // lane l: chunk in level l to start from
  };
  SlowSearchResult search_slow(simt::Team& team, Key k);

  /// Exact-key lateral search at any level; returns {found, chunk reached}.
  std::pair<bool, ChunkRef> find_lateral(simt::Team& team, Key k, ChunkRef start);

  /// searchDown that stops when reaching `target_level` (Algorithm 4.10).
  ChunkRef search_down_to_level(simt::Team& team, int target_level, Key k);

  /// Follow next pointers from a zombie to the first non-zombie chunk.
  /// When `skipped` is non-null the intermediate zombies are appended to it
  /// (the retire list of a successful unlink).  When `stale` is non-null the
  /// chain is walked with generation-checked reads; on a stamp mismatch
  /// `*stale` is set and NULL_CHUNK returned — the caller must restart.
  ChunkRef first_non_zombie(simt::Team& team, const simt::LaneVec<KV>& kv,
                            std::vector<ChunkRef>* skipped = nullptr,
                            bool* stale = nullptr);
  /// Lazily unlink zombies between prev and `first_nz` (searchSlow, §4.2.2).
  void redirect_to_remove_zombie(simt::Team& team, ChunkRef prev,
                                 ChunkRef first_nz);

  // ---- foresight hint index (foresight.cpp; DESIGN.md §14) ----
  /// Hinted start for k's bottom-level lateral walk: consult the published
  /// hint table and validate the result (generation-consistent AND
  /// non-zombie on the first checked read) under the caller's epoch pin.
  /// Exactly one of {kForesightHits, kForesightFallbacks} is recorded per
  /// call, so hits + fallbacks always equals the number of consults.  False
  /// (= take the classic head descent) when detached, unpublished, no hint
  /// covers k, or validation failed — a stale hint is never followed.
  bool foresight_start(simt::Team& team, Key k, Guarded* out);
  /// Republish the hint table when due (never published, invalidated, or
  /// past the dirty-event threshold): claim the single-writer flag, walk the
  /// bottom level under the caller's epoch pin sampling one live chunk per
  /// stride, and atomically swap the double-buffered table.  Abandons on any
  /// stale read or scheduler kill — lookups keep missing until a later
  /// rebuild succeeds.
  void foresight_maybe_rebuild(simt::Team& team);

  // ---- batch engine (batch.cpp; DESIGN.md §10) ----
  /// Ops executed under one shard pin before it is dropped and re-taken.
  /// Bounds how long a shard can hold back the global epoch: without the
  /// refresh a 4096-op shard would pin one epoch for its whole run and no
  /// retired chunk anywhere could complete its grace period.
  static constexpr std::uint32_t kBatchPinRefresh = 64;

  /// search_slow with a warm start: descend from the lowest cursor level
  /// still covering k instead of from the head, and refresh the cursor's
  /// entries along the way.  Returns the same path/found result as
  /// search_slow; any staleness or backtrack-without-prev goes cold
  /// (cursor invalidated, full restart from the head).
  SlowSearchResult batch_search(simt::Team& team, Key k, BatchCursor& cur);

  // ---- insert (insert.cpp) ----
  enum class InsertStatus { kInserted, kDuplicate, kNoMemory };
  bool insert_impl(simt::Team& team, Key k, Value v);
  /// The post-search half of insert_impl: commit <k, v> through the recorded
  /// path (bottom lock, raise loop).  Shared verbatim between the per-op and
  /// batch entry points so their step sequences cannot drift.  Throws
  /// bad_alloc on bottom-level pool exhaustion (structure untouched).
  bool insert_committed(simt::Team& team, Key k, Value v,
                        const SlowSearchResult& sr);
  InsertStatus insert_to_level(simt::Team& team, int level, ChunkRef& enc,
                               Key& k, Value v, bool& raise);
  void execute_insert(simt::Team& team, ChunkRef ref,
                      const simt::LaneVec<KV>& kv, Key k, Value v);

  // ---- split & merge (split_merge.cpp) ----
  struct MovedKeys {
    simt::LaneVec<Key> keys;  // ascending; lane i holds the i-th moved key
    int count = 0;
    ChunkRef moved_to = NULL_CHUNK;
    bool ok = true;  // false: the split's allocation failed, nothing happened
  };
  struct SplitOutcome {
    ChunkRef locked;   // chunk (old or new) containing k; still locked
    ChunkRef fresh;    // the newly allocated chunk; NULL_CHUNK = OOM, in
                       // which case `locked` is the untouched input chunk
    Key raised_key;    // key to raise if the coin flip says so
    MovedKeys moved;
  };
  SplitOutcome split_insert(simt::Team& team, ChunkRef split_ref, Key k,
                            Value v, int level);
  /// Split `next_ref` (locked) during a merge; no key inserted.  Returns the
  /// keys moved into the fresh chunk for down-pointer repair.
  MovedKeys split_remove(simt::Team& team, ChunkRef next_ref, int level);
  void execute_remove_merge(simt::Team& team, const simt::LaneVec<KV>& enc_kv,
                            ChunkRef enc_ref, ChunkRef next_ref, Key k);

  // ---- erase (erase.cpp) ----
  bool erase_impl(simt::Team& team, Key k);
  /// The post-search half of erase_impl: lock the bottom enclosing chunk,
  /// re-check containment, peel k out of the upper levels top-down, then
  /// remove it from the bottom.  Shared between the per-op and batch entry
  /// points.  False when k vanished between search and lock.
  bool erase_committed(simt::Team& team, Key k, const SlowSearchResult& sr);
  /// Remove k from the locked chunk `enc_ref`, merging if underfull.
  /// Releases (or zombifies) every lock it holds either way.  Returns false
  /// only when an *upper-level* merge-path split ran out of memory — nothing
  /// was removed there.  At level 0 it always succeeds: merge-split OOM
  /// falls back to a plain removal that tolerates the underfull chunk.
  bool remove_from_chunk(simt::Team& team, Key k, ChunkRef enc_ref, int level);
  void execute_remove_no_merge(simt::Team& team, const simt::LaneVec<KV>& kv,
                               ChunkRef ref, Key k, bool is_last_chunk);
  void remove_from_last_chunk(simt::Team& team, Key k, ChunkRef ref, int level);

  // ---- down-pointer repair (update_down.cpp) ----
  void update_down_ptrs(simt::Team& team, int level, const MovedKeys& moved);

  // ---- epoch-based reclamation (reclaim.cpp; DESIGN.md §9) ----
  /// Own-limbo depth at which an operation exit runs a reclaim pass.
  static constexpr std::size_t kReclaimBatch = 64;

  /// RAII pin for the calling team's epoch slot.  The *normal* path must
  /// call exit() — a yield point that also runs epoch maintenance (advance
  /// attempt + reclaim pass when limbo is deep).  The destructor only does
  /// a silent, non-yielding unpin: it runs during unwind (TeamKilled,
  /// bad_alloc), where a yield could either terminate the process or
  /// swallow a kill whose lease was already marked crashed.
  class EpochScope {
   public:
    EpochScope(Gfsl& g, simt::Team& team) : g_(g), team_(team) {
      if (g_.epochs_ != nullptr && !g_.epochs_->pinned(team_.id())) {
        g_.epochs_->pin(team_.id());
        top_ = true;
      }
    }
    void exit() {
      if (top_) {
        top_ = false;
        g_.epoch_exit(team_);
      }
    }
    ~EpochScope() {
      if (top_) g_.epochs_->unpin(team_.id());
    }
    EpochScope(const EpochScope&) = delete;
    EpochScope& operator=(const EpochScope&) = delete;

   private:
    Gfsl& g_;
    simt::Team& team_;
    bool top_ = false;
  };

  /// Normal-path epoch exit: one yield point (the epoch announcement), a
  /// reclaim pass when this team's limbo is deep, unpin, advance attempt.
  void epoch_exit(simt::Team& team);

  /// Retire an unlinked zombie into the caller's limbo list.  Must be
  /// called exactly once per unlink, by the unlinking team (the unlink
  /// point is unique: a predecessor's held lock or a won head-swing CAS).
  /// Without an EpochManager this is a no-op — zombies leak, seed-style.
  void retire_chunk(simt::Team& team, ChunkRef ref);

  /// Drain this team's reclaim candidates, scan the upper levels for stale
  /// down-pointer references into them (repairing any found by swinging the
  /// entry to the level-below head), recycle the unreferenced candidates
  /// and requeue the rest.  Returns the number recycled.
  std::size_t reclaim_pass(simt::Team& team);

  /// arena_.alloc_locked with an emergency reclaim attempt on exhaustion.
  /// Returns NULL_CHUNK when the pool is truly out of memory.
  ChunkRef alloc_chunk(simt::Team& team);

  // ---- crash tolerance (recovery.cpp) ----
  /// Spin cap before a waiter falls back to a fresh lateral walk.
  static constexpr int kSpinFallback = 64;

  /// This team's lease word; 0 when no LeaseTable is attached (legacy).
  std::uint32_t lease_word(simt::Team& team) const {
    return leases_ == nullptr ? 0u : leases_->word(team.id());
  }
  IntentSlot* intent_of(int team_id) {
    if (intents_ == nullptr || team_id < 0 ||
        team_id >= sched::LeaseTable::kMaxTeams) {
      return nullptr;
    }
    return intents_ + team_id;
  }
  void publish_intent(simt::Team& team, IntentKind kind, Key k, ChunkRef a,
                      ChunkRef b = NULL_CHUNK, ChunkRef fresh = NULL_CHUNK);
  void clear_intent(simt::Team& team);

  /// One bounded-spin round: a scheduler yield under seeded schedules, an
  /// exponentially growing pause loop when free-running.
  void backoff(simt::Team& team, int round);

  /// Called by a spinner that found `ref` locked (lock entry `lock_kv`).
  /// If the owner's lease expired, repair its published intent and/or steal
  /// the lock.  Returns true when the lock was (probably) freed and the
  /// caller should retry immediately instead of backing off.
  bool maybe_recover(simt::Team& team, ChunkRef ref, KV lock_kv);

  /// True iff `ref`'s lock entry is exactly (kLocked, owner_word) — the
  /// owner-precise guard that scopes every repair and release to the dead
  /// generation that published the intent.
  bool locked_by(ChunkRef ref, std::uint32_t owner_word) const;
  /// CAS-release `ref` if its lock is still exactly (kLocked, owner_word)
  /// and that lease has expired.
  bool release_if_owned(simt::Team& team, ChunkRef ref,
                        std::uint32_t owner_word);
  /// Claim and execute a dead team's intent; false if another (live)
  /// recoverer got there first.  Each repair returns true for roll-forward,
  /// false for roll-back.
  bool recover_intent(simt::Team& team, IntentSlot& slot, std::uint32_t iw);
  bool repair_insert_shift(simt::Team& team, ChunkRef ref, Key k);
  bool repair_erase_shift(simt::Team& team, ChunkRef ref, Key k);
  bool repair_split(simt::Team& team, ChunkRef ref, ChunkRef fresh);
  bool repair_merge(simt::Team& team, ChunkRef enc_ref, ChunkRef next_ref,
                    Key k, std::uint32_t owner);
  /// Resume/undo a partial shift: collapse the single adjacent duplicated
  /// entry by shifting everything right of it one slot left.
  void dedup_shift(simt::Team& team, ChunkRef ref);

  // ---- MVCC versioning (snapshot.cpp; DESIGN.md §13) ----
  /// Chunks visited between scan_at pin refreshes (same rationale as
  /// kBatchPinRefresh: a long scan must not stall reclamation).
  static constexpr std::uint32_t kScanPinRefresh = 64;
  /// Chain length at which a record op opportunistically prunes its chunk's
  /// chain down to the GC watermark.
  static constexpr std::size_t kRecordPruneLen = 8;

  /// The revision a mutating team stamps records with.  Owned commits
  /// (per-op path) begin/end a revision on the team's commit slot; a batch
  /// context (execute_shard) pre-installs the whole-batch revision instead.
  struct CommitCtx {
    Rev rev = 0;
    bool own = false;  // true: this op ran begin_commit and must end it
  };

  /// Scoped per-op revision: on entry, if a SnapshotManager is attached and
  /// no batch revision is installed for this slot, begin_commit; on exit,
  /// end_commit.  No yield points on either edge.  Detached: no-op.
  class CommitScope {
   public:
    CommitScope(Gfsl& g, simt::Team& team) : g_(g) {
      if (g_.snaps_ == nullptr) return;
      slot_ = SnapshotManager::commit_slot(team.id());
      CommitCtx& ctx = g_.commit_ctx_[static_cast<std::size_t>(slot_)];
      if (ctx.rev == 0) {
        ctx = {g_.snaps_->begin_commit(slot_), true};
        own_ = true;
      }
    }
    ~CommitScope() {
      if (own_) {
        g_.commit_ctx_[static_cast<std::size_t>(slot_)] = {};
        g_.snaps_->end_commit(slot_);
      }
    }
    CommitScope(const CommitScope&) = delete;
    CommitScope& operator=(const CommitScope&) = delete;

   private:
    Gfsl& g_;
    int slot_ = 0;
    bool own_ = false;
  };

  /// The installed revision for this team's ops; 0 when detached or when no
  /// CommitScope/batch context is active (e.g. a medic repairing outside an
  /// op — recover_intent opens its own scope).
  Rev commit_rev(simt::Team& team) const {
    if (snaps_ == nullptr) return 0;
    return commit_ctx_[static_cast<std::size_t>(
                           SnapshotManager::commit_slot(team.id()))]
        .rev;
  }

  /// Only bottom-level (level 0) chunks carry version chains; upper levels
  /// are index-only and never stamped.
  bool is_bottom(ChunkRef ref) const {
    return chunk_level_ != nullptr && chunk_level_[ref] == 0;
  }
  void set_chunk_level(ChunkRef ref, int level) {
    if (chunk_level_ != nullptr && ref != NULL_CHUNK) {
      chunk_level_[ref] = static_cast<std::uint8_t>(level);
    }
  }

  /// Stamp a live version record for an insert of <k, v> into bottom chunk
  /// `ref`.  Idempotent: skipped when k already has a live record (crash
  /// repair re-executing a half-done insert keeps the original revision).
  void stamp_insert(simt::Team& team, ChunkRef ref, Key k, Value v);
  /// Stamp k's record in bottom chunk `ref` with this op's erase revision.
  void stamp_erase(simt::Team& team, ChunkRef ref, Key k, Value v_hint);
  /// Copy version records for keys in (lo_excl, hi_incl] moving from `from`
  /// to `to` (split/merge key movement); levels above the bottom are a no-op.
  void copy_version_records(simt::Team& team, ChunkRef from, ChunkRef to,
                            Key lo_excl, Key hi_incl, int level);
  /// Opportunistic chain GC at record-op sites: when `ref`'s chain exceeds
  /// kRecordPruneLen, prune it to the watermark under the held chunk lock,
  /// routing freed records through the epoch ticket limbo.
  void maybe_prune_records(simt::Team& team, ChunkRef ref);
  /// Detach `ref`'s whole chain when the chunk is recycled (reclaim pass /
  /// recovery free-list rebuild).
  void purge_version_records(ChunkRef ref);

  // ---- durable persistence (persist_recovery.cpp; DESIGN.md §12) ----
  /// One persist point: a durable transition just published.  Detached this
  /// is a single pointer test — no fence, no yield, no model traffic — so
  /// the fault-free run is bit-identical to the seed.
  void persist_point() {
    if (region_ != nullptr) region_->barrier();
  }

  /// The medic id recover() runs its repairs under (the last id, outside
  /// every harness's worker range).
  static constexpr int kRecoveryMedicId = sched::LeaseTable::kMaxTeams - 1;

  /// Scrub pass of recover(): drop every upper-level key that no longer
  /// exists in the level below and re-home surviving down pointers whose
  /// target chunk is gone; unlink upper chunks the scrub emptied.  Returns
  /// through the report fields.
  void scrub_upper_levels(RecoveryReport& rep);

  // ---- integrity scrub internals (scrub.cpp; DESIGN.md §15) ----
  /// Stamp `ref`'s seal for its current contents (call sites: every lock
  /// release, with the lock still held).  One pointer test when detached.
  void stamp_seal(simt::Team& team, ChunkRef ref) {
    if (integrity_ != nullptr) {
      integrity_->stamp(ref, arena_.generation(ref, std::memory_order_relaxed),
                        arena_.entries(ref), arena_.dsize());
      team.metric(obs::kCorruptionSealsStamped);
    }
  }
  /// Verify + resolve one chunk: re-check its seal under try_lock and
  /// repair/quarantine on confirmed damage.  Returns false only when the
  /// chunk was busy (suspect flag left set for a later pass).  `rep` may be
  /// null (inline read-path resolution).
  bool scrub_chunk(simt::Team& team, ChunkRef ref, ScrubReport* rep);
  /// Rebuild a damaged upper-level chunk (lock held) from the level below:
  /// keep entries whose key exists below, re-home unverifiable down
  /// pointers, drop the rest.  True unless the chunk must be quarantined.
  bool repair_upper_chunk(simt::Team& team, ChunkRef ref, int level);
  /// Restore a damaged bottom chunk (lock held) from its version-record
  /// chain; succeeds iff the restored slots re-hash to the stored seal.
  bool repair_bottom_chunk(simt::Team& team, ChunkRef ref);
  /// Quarantine `ref` (lock held): compute the blast radius, zombify (or,
  /// for a level head, evacuate in place), unseal, report.
  void quarantine_chunk(simt::Team& team, ChunkRef ref, int level,
                        ScrubReport* rep);

  // ---- data ----
  GfslConfig cfg_;
  device::DeviceMemory* mem_;
  sched::StepScheduler* sched_;
  sched::LeaseTable* leases_;
  device::EpochManager* epochs_;
  device::PersistRegion* region_;
  SnapshotManager* snaps_;
  ForesightIndex* foresight_;
  IntegritySidecar* integrity_;
  /// Level of every allocated chunk (versioning only stamps level 0);
  /// allocated iff snaps_ != nullptr.  Written under the chunk's lock (or
  /// quiescently); racing readers only ever see it for refs they hold.
  std::unique_ptr<std::uint8_t[]> chunk_level_;
  /// Installed commit revision per commit slot (team ids + batch overflow).
  /// A slot is only touched by its owning team (or the single batch driver),
  /// so plain values suffice.
  std::unique_ptr<CommitCtx[]> commit_ctx_;
  std::unique_ptr<IntentSlot[]> intents_own_;  // backing when not region-mapped
  IntentSlot* intents_;  // one per team id; null w/o leases
  ChunkArena arena_;
  std::atomic<std::uint64_t> chunks_reclaimed_{0};
  std::uint64_t head_device_base_;  // synthetic address of the head array
  std::array<std::atomic<ChunkRef>, kMaxLevels> head_own_;
  std::atomic<ChunkRef>* head_;  // head_own_ or the region's head section
  std::array<std::atomic<std::int64_t>, kMaxLevels> level_chunks_;
  std::atomic<std::uint64_t> traversals_{0};
  std::atomic<std::uint64_t> traversal_chunk_reads_{0};

  friend class GfslInspector;  // white-box test access
};

}  // namespace gfsl::core
