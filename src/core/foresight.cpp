// Foresight hint index (DESIGN.md §14): the table itself plus the Gfsl
// integration — hinted operation starts and the lazy, epoch-pinned rebuild.
#include "core/foresight.h"

#include "core/gfsl.h"

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

ForesightIndex::ForesightIndex(std::uint32_t pool_chunks, std::uint32_t stride,
                               std::uint64_t rebuild_threshold)
    : cap_(pool_chunks / (stride == 0 ? 1 : stride) + 2),
      stride_(stride == 0 ? 1 : stride),
      threshold_(rebuild_threshold == 0 ? 1 : rebuild_threshold) {
  for (int t = 0; t < 2; ++t) {
    slots_[t] = std::make_unique<std::atomic<KV>[]>(cap_);
    gens_[t] = std::make_unique<std::atomic<std::uint32_t>[]>(cap_);
    counts_[t].store(0, std::memory_order_relaxed);
  }
}

bool ForesightIndex::lookup(Key k, ChunkRef* ref, std::uint32_t* gen) const {
  const std::uint64_t v1 = version_.load(std::memory_order_acquire);
  if ((v1 & 1) != 0) return false;
  const std::size_t t = cur_.load(std::memory_order_relaxed);
  const std::size_t n = counts_[t].load(std::memory_order_relaxed);
  if (n == 0) return false;
  // Binary search for the first hint with lo >= k; the answer is the one
  // before it (greatest lo < k).  Element loads are relaxed: a concurrent
  // double-publish could be rewriting this table, but then the version
  // re-check below fails and the garbage search result is discarded.
  const std::atomic<KV>* s = slots_[t].get();
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (kv_key(s[mid].load(std::memory_order_relaxed)) < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;  // every published lo is >= k
  const KV h = s[lo - 1].load(std::memory_order_relaxed);
  const std::uint32_t g = gens_[t][lo - 1].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (version_.load(std::memory_order_relaxed) != v1) return false;
  *ref = static_cast<ChunkRef>(kv_value(h));
  *gen = g;
  return true;
}

void ForesightIndex::invalidate_all() {
  std::uint64_t v = version_.load(std::memory_order_relaxed);
  while ((v & 1) == 0 &&
         !version_.compare_exchange_weak(v, v + 1, std::memory_order_release,
                                         std::memory_order_relaxed)) {
  }
}

bool ForesightIndex::claim_rebuild() {
  bool expected = false;
  if (!rebuilding_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
    return false;
  }
  claim_watermark_ = dirty_.load(std::memory_order_relaxed);
  return true;
}

void ForesightIndex::publish(const std::vector<Hint>& hints) {
  const std::size_t t = 1 - cur_.load(std::memory_order_relaxed);
  const std::size_t n = hints.size() < cap_ ? hints.size() : cap_;
  for (std::size_t i = 0; i < n; ++i) {
    slots_[t][i].store(make_kv(hints[i].lo, static_cast<Value>(hints[i].ref)),
                       std::memory_order_relaxed);
    gens_[t][i].store(hints[i].gen, std::memory_order_relaxed);
  }
  counts_[t].store(n, std::memory_order_relaxed);
  // Flip odd -> swap -> even.  Readers that sampled the old even version
  // keep running on the old table (untouched by the writes above) and pass
  // their re-check; anyone straddling the swap misses and falls back.
  std::uint64_t v = version_.load(std::memory_order_relaxed);
  if ((v & 1) == 0) {
    version_.store(v + 1, std::memory_order_release);
    v = v + 1;
  }
  cur_.store(t, std::memory_order_release);
  version_.store(v + 1, std::memory_order_release);
  // Consume the dirty events the walk could have observed; events marked
  // mid-walk survive and count toward the next rebuild.
  dirty_.fetch_sub(claim_watermark_, std::memory_order_relaxed);
  claim_watermark_ = 0;
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
}

// --- Gfsl integration --------------------------------------------------------

bool Gfsl::foresight_start(Team& team, Key k, Guarded* out) {
  if (foresight_ == nullptr) return false;
  foresight_maybe_rebuild(team);
  ChunkRef ref = NULL_CHUNK;
  std::uint32_t gen = 0;
  if (!foresight_->lookup(k, &ref, &gen)) {
    team.metric(obs::kForesightFallbacks);
    return false;
  }
  // Software prefetch of the predicted chunk: warms the L2 lines ahead of
  // the demand read below without counting as demand traffic.
  mem_->prefetch(arena_.device_address(ref), arena_.chunk_bytes());
  // Validate under the caller's epoch pin: the read must be generation-
  // consistent with the published stamp AND non-zombie.  A gen-consistent
  // live chunk was never unlinked, so the pin protects it and every ref
  // extracted from it onward is classic-safe.  A zombie — even one whose
  // stamp still matches — is unusable: its frozen next pointers may name
  // chunks recycled before this pin existed (the §9 ABA shape).
  Guarded g{ref, gen};
  bool stale = false;
  const LaneVec<KV> kv = read_chunk_checked(team, g, &stale);
  if (stale || is_zombie(team, kv)) {
    team.metric(obs::kForesightStaleHints);
    team.metric(obs::kForesightFallbacks);
    return false;
  }
  team.metric(obs::kForesightHits);
  *out = g;
  return true;
}

void Gfsl::foresight_prime(Team& team) {
  if (foresight_ == nullptr) return;
  // Quiescent warm-up: run the lazy rebuild now (the version starts odd, so
  // rebuild_due() holds on a fresh index) instead of letting the first
  // measured operation pay the bottom-level walk while its peers fall back
  // to classic descents against an unpublished table.
  EpochScope epoch(*this, team);
  foresight_maybe_rebuild(team);
  epoch.exit();
}

void Gfsl::foresight_maybe_rebuild(Team& team) {
  if (!foresight_->rebuild_due() || !foresight_->claim_rebuild()) return;
  // The claim is released even when a scheduler kill unwinds the walk (the
  // yield points inside read_chunk throw TeamKilled): the version simply
  // stays odd — every lookup misses — until a later rebuild succeeds.
  struct ClaimGuard {
    ForesightIndex* f;
    ~ClaimGuard() { f->release_rebuild(); }
  } guard{foresight_};

  // Walk the bottom level left to right under the caller's epoch pin,
  // sampling one live chunk per stride.  Every ref is acquired from a
  // validated read (or the head), so the walk is as safe as any lateral
  // traversal; any staleness abandons the rebuild — the next operation
  // retries.
  std::vector<ForesightIndex::Hint> hints;
  hints.reserve(foresight_->stride() == 0
                    ? 16
                    : arena_.high_water() / foresight_->stride() + 2);
  Key lo = KEY_NEG_INF;
  std::uint64_t visited = 0;
  std::uint64_t live_seen = 0;
  Guarded cur = guard_ref(head_of(team, 0));
  while (cur.ref != NULL_CHUNK) {
    if (++visited > static_cast<std::uint64_t>(arena_.capacity()) + 1) return;
    bool stale = false;
    const LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
    if (stale) return;  // abandoned; version stays odd, all lookups miss
    const Key mx = max_of(team, kv);
    const ChunkRef nxt = next_of(team, kv);
    if (!is_zombie(team, kv)) {
      if (live_seen % foresight_->stride() == 0) {
        if (!hints.empty() && hints.back().lo == lo) {
          // Duplicate bound (the head's max can collapse to -inf): keep the
          // rightmost chunk — still at-or-left for every key above lo.
          hints.back() = {lo, cur.ref, cur.gen};
        } else {
          hints.push_back({lo, cur.ref, cur.gen});
        }
      }
      ++live_seen;
    }
    lo = mx;
    if (mx == KEY_INF || nxt == NULL_CHUNK) break;
    cur = guard_ref(nxt);
  }
  foresight_->publish(hints);
  team.metric(obs::kForesightRebuilds);
}

}  // namespace gfsl::core
