// SnapshotManager + the Gfsl-side MVCC glue (DESIGN.md §13).
//
// Everything in this file is host-resident sidecar state: version-record
// walks and registry operations issue no modeled device traffic and cross no
// scheduler yield points.  The only cooperative (yielding, modeled) pieces
// of scan_at are the ones it shares with the legacy scan — search_down and
// the checked chunk reads.
#include "core/snapshot.h"

#include <map>

#include "core/gfsl.h"

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

namespace {

void atomic_max(std::atomic<Rev>& a, Rev v) {
  Rev cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_max_u64(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- SnapshotManager: construction ------------------------------------------

SnapshotManager::SnapshotManager(std::uint32_t pool_chunks,
                                 std::uint32_t record_capacity)
    : pool_chunks_(pool_chunks),
      capacity_(record_capacity != 0
                    ? record_capacity
                    : std::max(4096u, std::min(pool_chunks * 4u, 1u << 20))),
      recs_(new VersionRec[capacity_]),
      heads_(new std::atomic<RecIdx>[pool_chunks_]) {
  for (std::uint32_t i = 0; i < pool_chunks_; ++i) {
    heads_[i].store(kNullRec, std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    recs_[i].next.store(i + 1 == capacity_ ? kNullRec : i + 1,
                        std::memory_order_relaxed);
  }
  free_head_.store(0, std::memory_order_relaxed);  // tag 0, index 0
  for (auto& f : inflight_) f.store(0, std::memory_order_relaxed);
  for (auto& b : batch_slot_busy_) b.store(0, std::memory_order_relaxed);
  for (auto& s : snap_slots_) s.store(0, std::memory_order_relaxed);
}

// --- Record arena (tagged Treiber free-list) --------------------------------

RecIdx SnapshotManager::alloc_record() {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    const RecIdx idx = static_cast<RecIdx>(head);
    if (idx == kNullRec) return kNullRec;
    const RecIdx nxt = recs_[idx].next.load(std::memory_order_relaxed);
    const std::uint64_t want =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(head >> 32) + 1)
         << 32) |
        nxt;
    if (free_head_.compare_exchange_weak(head, want, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      created_.fetch_add(1, std::memory_order_relaxed);
      live_.fetch_add(1, std::memory_order_relaxed);
      return idx;
    }
  }
}

void SnapshotManager::free_record(RecIdx i) {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    recs_[i].next.store(static_cast<RecIdx>(head), std::memory_order_relaxed);
    const std::uint64_t want =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(head >> 32) + 1)
         << 32) |
        i;
    if (free_head_.compare_exchange_weak(head, want, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return;
    }
  }
}

void SnapshotManager::free_records(const std::vector<RecIdx>& idxs) {
  for (const RecIdx i : idxs) free_record(i);
}

// --- Revision clock / commit protocol ---------------------------------------

Rev SnapshotManager::begin_commit(int slot) {
  auto& sl = inflight_[slot];
  // PENDING -> allocate -> publish: the whole window is yield-free, so a
  // stable_rev() spin on PENDING is bounded by plain instruction progress.
  sl.store(kRevPending, std::memory_order_seq_cst);
  const Rev r = rev_.fetch_add(1, std::memory_order_seq_cst) + 1;
  sl.store(r, std::memory_order_seq_cst);
  if (durable_ != nullptr) atomic_max_u64(*durable_, r);
  return r;
}

void SnapshotManager::end_commit(int slot) {
  inflight_[slot].store(0, std::memory_order_seq_cst);
}

int SnapshotManager::acquire_batch_slot() {
  for (int i = 0; i < kBatchSlots; ++i) {
    std::uint32_t expected = 0;
    if (batch_slot_busy_[i].compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      return kTeamSlots + 1 + i;
    }
  }
  return -1;
}

void SnapshotManager::release_batch_slot(int slot) {
  const int i = slot - kTeamSlots - 1;
  if (i >= 0 && i < kBatchSlots) {
    batch_slot_busy_[i].store(0, std::memory_order_release);
  }
}

Rev SnapshotManager::stable_rev() const {
  // Read the clock FIRST: a commit that allocates after this load publishes
  // a revision strictly greater than `cur`, so missing its slot value below
  // can only make the result smaller (still correct, still monotone because
  // a slot holding r keeps every later stable_rev <= r-1 until end_commit).
  const Rev cur = rev_.load(std::memory_order_seq_cst);
  Rev s = cur;
  for (int i = 0; i < kCommitSlots; ++i) {
    Rev v = inflight_[i].load(std::memory_order_seq_cst);
    while (v == kRevPending) {  // yield-free window, bounded spin
      v = inflight_[i].load(std::memory_order_seq_cst);
    }
    if (v != 0 && v - 1 < s) s = v - 1;
  }
  return s;
}

// --- Snapshot registry ------------------------------------------------------

Snapshot SnapshotManager::acquire() {
  for (int i = 0; i < kMaxSnapshots; ++i) {
    Rev expected = 0;
    if (!snap_slots_[i].compare_exchange_strong(expected, 1,
                                                std::memory_order_seq_cst)) {
      continue;
    }
    // The slot now reads as rev 0 (maximally conservative) to every
    // watermark scan.  Because watermark() samples the stable revision
    // *before* scanning the registry, a pruner either sees this claim, or
    // its stable sample predates our stable_rev() call — either way its
    // horizon is <= s0 and cannot free a record s0 still needs.
    const Rev s0 = stable_rev();
    Rev claimed = 1;
    if (!snap_slots_[i].compare_exchange_strong(claimed, s0 + 1,
                                                std::memory_order_seq_cst)) {
      // Expired mid-registration (degrade raced us).  The slot is free
      // again; hand back a closed snapshot.
      return {};
    }
    return {i, s0, gen_.load(std::memory_order_seq_cst)};
  }
  return {};
}

void SnapshotManager::release(const Snapshot& s) {
  if (s.slot < 0 || s.slot >= kMaxSnapshots) return;
  Rev expected = s.rev + 1;
  snap_slots_[s.slot].compare_exchange_strong(expected, 0,
                                              std::memory_order_seq_cst);
}

bool SnapshotManager::valid(const Snapshot& s) const {
  if (!s.open() || s.slot >= kMaxSnapshots) return false;
  if (snap_slots_[s.slot].load(std::memory_order_seq_cst) != s.rev + 1) {
    return false;
  }
  if (gen_.load(std::memory_order_seq_cst) != s.gen) return false;
  return s.rev >= poison_rev_.load(std::memory_order_seq_cst);
}

Rev SnapshotManager::min_snapshot_rev() const {
  Rev m = kRevLive;
  for (const auto& sl : snap_slots_) {
    const Rev v = sl.load(std::memory_order_seq_cst);
    if (v == 0) continue;
    const Rev r = v - 1;  // v == 1: mid-registration, conservative rev 0
    if (r < m) m = r;
  }
  return m;
}

Rev SnapshotManager::watermark() const {
  // Stable revision FIRST, registry SECOND — the acquire() handshake's
  // correctness argument depends on this order (see acquire()).
  const Rev st = stable_rev();
  const Rev ms = min_snapshot_rev();
  return ms < st ? ms : st;
}

std::size_t SnapshotManager::active_snapshots() const {
  std::size_t n = 0;
  for (const auto& sl : snap_slots_) {
    if (sl.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

Rev SnapshotManager::oldest_snapshot_age() const {
  const Rev ms = min_snapshot_rev();
  if (ms == kRevLive) return 0;
  const Rev cur = current_rev();
  return cur > ms ? cur - ms : 0;
}

std::size_t SnapshotManager::expire_lagging(Rev max_age) {
  if (max_age == 0) return 0;
  const Rev cur = current_rev();
  std::size_t n = 0;
  for (auto& sl : snap_slots_) {
    Rev v = sl.load(std::memory_order_seq_cst);
    // v == 1 is a registration in flight: its revision is being sampled
    // *now*, so it cannot be lagging.
    if (v <= 1) continue;
    const Rev r = v - 1;
    if (cur - r <= max_age) continue;
    if (sl.compare_exchange_strong(v, 0, std::memory_order_seq_cst)) {
      ++n;
      expired_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return n;
}

void SnapshotManager::degrade() {
  overflows_.fetch_add(1, std::memory_order_relaxed);
  atomic_max(poison_rev_, rev_.load(std::memory_order_seq_cst));
  gen_.fetch_add(1, std::memory_order_seq_cst);
  for (auto& sl : snap_slots_) {
    if (sl.exchange(0, std::memory_order_seq_cst) != 0) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// --- Version chains ---------------------------------------------------------

bool SnapshotManager::record_insert(ChunkRef c, Key k, Value v, Rev r) {
  const RecIdx ni = alloc_record();
  if (ni == kNullRec) {
    degrade();
    return false;
  }
  VersionRec& n = recs_[ni];
  n.key = k;
  n.value = v;
  n.insert_rev = r;
  n.erase_rev.store(kRevLive, std::memory_order_relaxed);
  n.next.store(heads_[c].load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  heads_[c].store(ni, std::memory_order_release);
  return true;
}

bool SnapshotManager::mark_erased(ChunkRef c, Key k, Value v_hint, Rev r) {
  bool found_any = false;
  RecIdx cur = heads_[c].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    VersionRec& rec = recs_[cur];
    if (rec.key == k) {
      found_any = true;
      if (rec.erase_rev.load(std::memory_order_acquire) == kRevLive) {
        rec.erase_rev.store(r, std::memory_order_release);
        return true;
      }
    }
    cur = rec.next.load(std::memory_order_acquire);
  }
  if (found_any) {
    // Departed-only history: the chunk entry this erase is removing was
    // superseded by those records already; a fresh {0, r} record would
    // fabricate an interval overlapping them with a possibly different
    // value.
    return true;
  }
  const RecIdx ni = alloc_record();
  if (ni == kNullRec) {
    degrade();
    return false;
  }
  VersionRec& n = recs_[ni];
  n.key = k;
  n.value = v_hint;
  n.insert_rev = 0;  // legacy key: visible since before any snapshot
  n.erase_rev.store(r, std::memory_order_relaxed);
  n.next.store(heads_[c].load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  heads_[c].store(ni, std::memory_order_release);
  return true;
}

void SnapshotManager::annul_live_record(ChunkRef c, Key k) {
  RecIdx cur = heads_[c].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    VersionRec& rec = recs_[cur];
    if (rec.key == k &&
        rec.erase_rev.load(std::memory_order_acquire) == kRevLive) {
      // [r, r) covers nothing: the record is dead at every snapshot and a
      // future prune drops it as annulled.
      rec.erase_rev.store(rec.insert_rev, std::memory_order_release);
      return;
    }
    cur = rec.next.load(std::memory_order_acquire);
  }
}

bool SnapshotManager::has_live_record(ChunkRef c, Key k, Value* v) const {
  RecIdx cur = heads_[c].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    const VersionRec& rec = recs_[cur];
    if (rec.key == k &&
        rec.erase_rev.load(std::memory_order_acquire) == kRevLive) {
      if (v != nullptr) *v = rec.value;
      return true;
    }
    cur = rec.next.load(std::memory_order_acquire);
  }
  return false;
}

int SnapshotManager::copy_records(ChunkRef from, ChunkRef to, Key lo_excl,
                                  Key hi_incl) {
  int copied = 0;
  RecIdx src = heads_[from].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; src != kNullRec && steps < capacity_; ++steps) {
    const VersionRec& r = recs_[src];
    const RecIdx src_next = r.next.load(std::memory_order_acquire);
    if (r.key > lo_excl && r.key <= hi_incl) {
      const Rev er = r.erase_rev.load(std::memory_order_acquire);
      // Idempotence probe: a replayed copy (crash repair) finds its earlier
      // incarnation by (key, insert_rev) and only propagates a missing
      // erase stamp.
      RecIdx dst = heads_[to].load(std::memory_order_relaxed);
      RecIdx found = kNullRec;
      for (std::uint32_t s2 = 0; dst != kNullRec && s2 < capacity_; ++s2) {
        const VersionRec& d = recs_[dst];
        if (d.key == r.key && d.insert_rev == r.insert_rev) {
          found = dst;
          break;
        }
        dst = d.next.load(std::memory_order_relaxed);
      }
      if (found != kNullRec) {
        if (er != kRevLive &&
            recs_[found].erase_rev.load(std::memory_order_acquire) ==
                kRevLive) {
          recs_[found].erase_rev.store(er, std::memory_order_release);
        }
      } else {
        const RecIdx ni = alloc_record();
        if (ni == kNullRec) {
          degrade();
          return -1;
        }
        VersionRec& n = recs_[ni];
        n.key = r.key;
        n.value = r.value;
        n.insert_rev = r.insert_rev;
        n.erase_rev.store(er, std::memory_order_relaxed);
        n.next.store(heads_[to].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        heads_[to].store(ni, std::memory_order_release);
        ++copied;
      }
    }
    src = src_next;
  }
  return copied;
}

std::size_t SnapshotManager::prune_chain(ChunkRef c, Rev wm, Key chunk_max,
                                         std::vector<RecIdx>* freed) {
  std::size_t dropped = 0;
  RecIdx prev = kNullRec;
  RecIdx cur = heads_[c].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    VersionRec& r = recs_[cur];
    const RecIdx nxt = r.next.load(std::memory_order_acquire);
    const Rev er = r.erase_rev.load(std::memory_order_acquire);
    const bool departed = er != kRevLive;
    const bool annulled = departed && er <= r.insert_rev;
    const bool drop = (departed && er <= wm) || annulled || r.key > chunk_max;
    if (drop) {
      // Unlink; a racing lock-free walker already on `cur` still follows
      // its (unchanged) next, which is why the index must survive an epoch
      // grace period before free_records().
      if (prev == kNullRec) {
        heads_[c].store(nxt, std::memory_order_release);
      } else {
        recs_[prev].next.store(nxt, std::memory_order_release);
      }
      if (freed != nullptr) freed->push_back(cur);
      ++dropped;
    } else {
      prev = cur;
    }
    cur = nxt;
  }
  if (dropped != 0) {
    pruned_.fetch_add(dropped, std::memory_order_relaxed);
    live_.fetch_sub(dropped, std::memory_order_relaxed);
  }
  return dropped;
}

std::size_t SnapshotManager::purge_chunk(ChunkRef c,
                                         std::vector<RecIdx>* freed) {
  RecIdx cur = heads_[c].exchange(kNullRec, std::memory_order_acq_rel);
  std::size_t n = 0;
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    const RecIdx nxt = recs_[cur].next.load(std::memory_order_acquire);
    if (freed != nullptr) freed->push_back(cur);
    ++n;
    cur = nxt;
  }
  if (n != 0) {
    pruned_.fetch_add(n, std::memory_order_relaxed);
    live_.fetch_sub(n, std::memory_order_relaxed);
  }
  return n;
}

std::size_t SnapshotManager::chain_length(ChunkRef c) const {
  std::size_t n = 0;
  RecIdx cur = heads_[c].load(std::memory_order_acquire);
  for (std::uint32_t steps = 0; cur != kNullRec && steps < capacity_; ++steps) {
    ++n;
    cur = recs_[cur].next.load(std::memory_order_acquire);
  }
  return n;
}

// --- Lifecycle --------------------------------------------------------------

void SnapshotManager::reset() {
  gen_.fetch_add(1, std::memory_order_seq_cst);
  for (auto& sl : snap_slots_) {
    if (sl.exchange(0, std::memory_order_seq_cst) != 0) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (std::uint32_t i = 0; i < pool_chunks_; ++i) {
    heads_[i].store(kNullRec, std::memory_order_relaxed);
  }
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    recs_[i].next.store(i + 1 == capacity_ ? kNullRec : i + 1,
                        std::memory_order_relaxed);
  }
  free_head_.store(0, std::memory_order_release);
  live_.store(0, std::memory_order_relaxed);
  // With every chain gone, every surviving key resolves by rule 2 (acts as
  // insert_rev 0) at every *future* snapshot — old ones died with the
  // generation bump — so earlier poisoning is moot.
  poison_rev_.store(0, std::memory_order_seq_cst);
}

void SnapshotManager::restore_rev(Rev r) {
  atomic_max(rev_, r);
  if (durable_ != nullptr) atomic_max_u64(*durable_, r);
}

// --- Gfsl glue --------------------------------------------------------------

Snapshot Gfsl::snapshot() {
  if (snaps_ == nullptr) return {};
  return snaps_->acquire();
}

void Gfsl::release_snapshot(Snapshot& s) {
  if (snaps_ != nullptr && s.open()) snaps_->release(s);
  s = {};
}

void Gfsl::stamp_insert(Team& team, ChunkRef ref, Key k, Value v) {
  if (snaps_ == nullptr || !is_bottom(ref)) return;
  const Rev r = commit_rev(team);
  if (r == 0) {
    // A mutating path without a CommitScope cannot be versioned; poison the
    // store rather than let rule 2 show the key to pre-insert snapshots.
    snaps_->degrade();
    return;
  }
  // Idempotent under crash-repair replay: the original record (and its
  // original revision) wins.
  if (snaps_->has_live_record(ref, k)) return;
  if (snaps_->record_insert(ref, k, v, r)) {
    team.metric(obs::kVersionRecordsCreated);
  }
}

void Gfsl::stamp_erase(Team& team, ChunkRef ref, Key k, Value v_hint) {
  if (snaps_ == nullptr || !is_bottom(ref)) return;
  const Rev r = commit_rev(team);
  if (r == 0) {
    snaps_->degrade();
    return;
  }
  if (snaps_->mark_erased(ref, k, v_hint, r)) {
    team.metric(obs::kVersionRecordsCreated);
  }
}

void Gfsl::copy_version_records(Team& team, ChunkRef from, ChunkRef to,
                                Key lo_excl, Key hi_incl, int level) {
  if (snaps_ == nullptr || level != 0) return;
  const int n = snaps_->copy_records(from, to, lo_excl, hi_incl);
  if (n > 0) {
    team.metric(obs::kVersionRecordCopies, static_cast<std::uint64_t>(n));
  }
}

void Gfsl::maybe_prune_records(Team& team, ChunkRef ref) {
  // Requires `ref`'s chunk lock (single chain mutator).  Without an
  // EpochManager there is no grace period for lock-free chain walkers, so
  // records are never pruned (they leak until compact, seed-style — the
  // same deal unlinked zombies get).
  if (snaps_ == nullptr || epochs_ == nullptr || !is_bottom(ref)) return;
  const std::size_t len = snaps_->chain_length(ref);
  if (len <= kRecordPruneLen) return;
  if (team.metrics() != nullptr) {
    team.metrics()->record(obs::kVersionChainLen, len);
  }
  const Key mx = next_entry_max(
      arena_.entry(ref, arena_.next_slot()).load(std::memory_order_acquire));
  std::vector<RecIdx> freed;
  const std::size_t n =
      snaps_->prune_chain(ref, snaps_->watermark(), mx, &freed);
  if (n != 0) {
    team.metric(obs::kVersionRecordsPruned, n);
    for (const RecIdx i : freed) epochs_->retire_ticket(team.id(), i);
  }
}

void Gfsl::purge_version_records(ChunkRef ref) {
  // Called where the chunk itself is reclaimed (post-grace) or rebuilt
  // quiescently: no walker can still acquire the chain head, and any parked
  // walker is rejected by the chunk generation re-check, so the indices can
  // return to the arena immediately.
  if (snaps_ == nullptr) return;
  std::vector<RecIdx> freed;
  if (snaps_->purge_chunk(ref, &freed) != 0) snaps_->free_records(freed);
}

ScanAtStatus Gfsl::scan_at(Team& team, const Snapshot& s, Key lo, Key hi,
                           std::vector<std::pair<Key, Value>>& out,
                           std::size_t limit) {
  if (snaps_ == nullptr) return ScanAtStatus::kNoManager;
  if (lo < MIN_USER_KEY) lo = MIN_USER_KEY;
  if (hi > MAX_USER_KEY) hi = MAX_USER_KEY;
  if (!snaps_->valid(s)) {
    team.metric(obs::kScanAtExpired);
    return ScanAtStatus::kSnapshotExpired;
  }
  if (lo > hi || limit == 0) return ScanAtStatus::kOk;

  simt::OpScope scope(team, obs::kScanAtOp, lo);
  // Same manual pin pattern as execute_shard: EpochScope's exit() is
  // one-shot, but the mid-scan refresh needs pin cycles.
  const bool own_pin = epochs_ != nullptr && !epochs_->pinned(team.id());
  if (own_pin) epochs_->pin(team.id());

  std::vector<std::pair<Key, Value>> got;
  ScanAtStatus status = ScanAtStatus::kOk;
  try {
    // Monotone key watermark: chunks only ever move keys *forward* (splits
    // move the top half into a fresh successor, merges move survivors into
    // the successor), so a scan position `next_lo` never needs to restart
    // from `lo` — any concurrent reshuffle of keys >= next_lo lands at or
    // beyond the position where a re-descend resumes.
    Key next_lo = lo;
    std::uint32_t chunks_since_pin = 0;
    bool done = false;
    while (!done) {
      if (!snaps_->valid(s)) {
        status = ScanAtStatus::kSnapshotExpired;
        break;
      }
      Guarded cur = search_down(team, next_lo);
      bool redescend = false;
      while (!done && !redescend) {
        if (own_pin && ++chunks_since_pin >= kScanPinRefresh) {
          // Long scans must not stall reclamation (kBatchPinRefresh's
          // rationale); drop the pin, run epoch maintenance, re-pin and
          // re-descend to the watermark.
          chunks_since_pin = 0;
          epoch_exit(team);
          epochs_->pin(team.id());
          team.metric(obs::kScanAtRedescents);
          redescend = true;
          break;
        }
        bool stale = false;
        const LaneVec<KV> kv = read_chunk_checked(team, cur, &stale);
        if (stale) {
          team.metric(obs::kScanAtRedescents);
          redescend = true;
          break;
        }
        if (is_zombie(team, kv)) {
          // Frozen contents moved forward already; the successor covers
          // this key range.
          note_zombie(team, cur.ref);
          cur = guard_ref(next_of(team, kv));
          continue;
        }
        const Key cmax = max_of(team, kv);
        const ChunkRef nxt = next_of(team, kv);
        // Harvest bound: cap at the chunk's own range.  Keys beyond cmax
        // belong to (and are harvested from) successors — entries beyond it
        // are an in-flight split's uncleared tail, chain records beyond it
        // are superseded copies.
        const Key hi_here = cmax < hi ? cmax : hi;

        // Resolution state per key: the chunk entries were read above
        // (writers stamp records *before* mutating entries, so reading the
        // entries first and the sidecar second can't miss a key both ways);
        // the sidecar walk below is host-side and yield-free.
        struct KeyState {
          bool entry = false;
          Value entry_v = 0;
          bool any_rec = false;
          bool vis = false;
          Value vis_v = 0;
        };
        std::map<Key, KeyState> keys;
        for (int i = 0; i < team.dsize(); ++i) {
          const Key k = kv_key(kv[i]);
          if (k == KEY_NEG_INF || kv_is_empty(kv[i])) continue;
          if (k < next_lo || k > hi_here) continue;
          KeyState& st = keys[k];
          st.entry = true;
          st.entry_v = kv_value(kv[i]);
        }
        RecIdx it = snaps_->chain_head(cur.ref);
        for (std::uint32_t steps = 0;
             it != SnapshotManager::kNullRec && steps < snaps_->walk_cap();
             ++steps) {
          const VersionRec& r = snaps_->rec(it);
          const RecIdx nxt_rec = r.next.load(std::memory_order_acquire);
          if (r.key >= next_lo && r.key <= hi_here) {
            const Rev er = r.erase_rev.load(std::memory_order_acquire);
            KeyState& st = keys[r.key];
            st.any_rec = true;
            if (r.insert_rev <= s.rev && s.rev < er) {
              st.vis = true;
              st.vis_v = r.value;
            }
          }
          it = nxt_rec;
        }
        // The chain was walked after the checked entry read: a chunk
        // recycle in between would have handed us another lifetime's chain,
        // so re-verify the generation before trusting the harvest.
        if (epochs_ != nullptr &&
            arena_.generation(cur.ref, std::memory_order_acquire) !=
                cur.gen) {
          team.metric(obs::kScanAtRedescents);
          redescend = true;
          break;
        }
        // A split between the entry read and the chain walk re-homes the
        // upper half's records into the fresh sibling, and the splitter's
        // next prune drops the originals (key > new max) from this chain —
        // the stale wide image would then resolve those keys by rule 2 at
        // every snapshot.  The split rewrites the NEXT slot (max falls to
        // the threshold), and nothing else lowers a live chunk's max with
        // versioning attached (erase keeps it sticky), so an unchanged
        // NEXT slot certifies the chain walked above still held every
        // record this image's range depends on.  (The unlink is ordered
        // after the split's publish, so observing the old slot here proves
        // the walk preceded any such prune.)
        if (arena_.entry(cur.ref, arena_.next_slot())
                .load(std::memory_order_acquire) !=
            kv[arena_.next_slot()]) {
          team.metric(obs::kScanAtRedescents);
          redescend = true;
          break;
        }
        // A record-arena degrade during the walk can have recycled records
        // under us — but it also expired this snapshot, so the harvest dies
        // with it instead of leaking torn values.
        if (!snaps_->valid(s)) {
          status = ScanAtStatus::kSnapshotExpired;
          done = true;
          break;
        }
        for (const auto& [k, st] : keys) {
          // Rule 1: a version interval covering s.  Rule 2: a live entry
          // with no recorded history (bulk-loaded / recovered keys act as
          // insert_rev 0).  Otherwise invisible at s.
          const bool visible = st.vis || (st.entry && !st.any_rec);
          if (!visible) continue;
          if (got.size() >= limit) {
            done = true;
            break;
          }
          got.emplace_back(k, st.vis ? st.vis_v : st.entry_v);
        }
        if (done || cmax >= hi || nxt == NULL_CHUNK) {
          done = true;
          break;
        }
        // Monotone watermark: a hop or re-descend can land BEHIND the scan
        // position (a stale down pointer resolving to a chunk recycled into
        // a lower range) — such a chunk harvests nothing (the filters above
        // are bounded by next_lo) and the walk converges forward, but its
        // cmax must never drag the watermark backwards or the keys below it
        // would be harvested twice.
        if (cmax >= next_lo) next_lo = cmax + 1;
        cur = guard_ref(nxt);
      }
    }
  } catch (...) {
    // TeamKilled unwind: silent unpin only (epoch_exit would yield).
    if (own_pin) epochs_->unpin(team.id());
    throw;
  }
  if (own_pin) epoch_exit(team);
  if (status != ScanAtStatus::kOk) {
    team.metric(obs::kScanAtExpired);
    return status;
  }
  out.insert(out.end(), got.begin(), got.end());
  scope.set_value(got.size());
  return ScanAtStatus::kOk;
}

}  // namespace gfsl::core
