// White-box quiescent inspection shared by validate/shape/debug code.
// GfslInspector is a friend of Gfsl; everything here reads the structure
// host-side and must only run while no team is operating.
#pragma once

#include <set>
#include <vector>

#include "core/gfsl.h"

namespace gfsl::core {

struct ChunkView {
  ChunkRef ref;
  std::vector<KV> data;  // non-empty data entries, in slot order
  Key max;
  ChunkRef next;
  LockState lock;
};

class GfslInspector {
 public:
  explicit GfslInspector(const Gfsl& g) : g_(g) {}

  ChunkView view(ChunkRef ref) const {
    const auto& arena = g_.arena_;
    ChunkView v;
    v.ref = ref;
    const std::atomic<KV>* e = arena.entries(ref);
    for (int i = 0; i < arena.dsize(); ++i) {
      const KV kv = e[i].load(std::memory_order_acquire);
      if (!kv_is_empty(kv)) v.data.push_back(kv);
    }
    const KV nx = e[arena.next_slot()].load(std::memory_order_acquire);
    v.max = next_entry_max(nx);
    v.next = next_entry_ref(nx);
    v.lock = lock_entry_state(
        e[arena.lock_slot()].load(std::memory_order_acquire));
    return v;
  }

  /// All chunks in a level's chain (zombies included), bounded against
  /// cycles.
  std::vector<ChunkView> level_chain(int level, bool* cycle) const {
    std::vector<ChunkView> out;
    std::set<ChunkRef> seen;
    ChunkRef cur = g_.head_[static_cast<std::size_t>(level)].load(
        std::memory_order_acquire);
    while (cur != NULL_CHUNK) {
      if (!seen.insert(cur).second) {
        if (cycle != nullptr) *cycle = true;
        return out;
      }
      out.push_back(view(cur));
      cur = out.back().next;
    }
    if (cycle != nullptr) *cycle = false;
    return out;
  }

  const Gfsl& g_;
};

}  // namespace gfsl::core
