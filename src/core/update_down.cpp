// updateDownPtrs (Algorithm 4.10): after a split or merge moves keys between
// chunks in level i, repair the down-pointers associated with those keys in
// level i+1.  Until repaired, the stale pointers are legal — they point to a
// chunk from which the keys' new home is laterally reachable (§4.3 "Order
// Between Down Pointers").
#include "core/gfsl.h"

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

void Gfsl::update_down_ptrs(Team& team, int level, const MovedKeys& moved) {
  if (moved.count == 0) return;
  const int upper = level + 1;
  if (upper >= max_levels()) return;

  // Descend once to the smallest moved key's position in level i+1; the
  // moved keys are ascending, so each subsequent search resumes laterally
  // from where the previous one stopped.
  const Key first_key = team.shfl(moved.keys, 0);
  ChunkRef upper_ch = search_down_to_level(team, upper, first_key);

  for (int c = 0; c < moved.count; ++c) {
    const Key mk = team.shfl(moved.keys, c);
    const auto [found, ch] = find_lateral(team, mk, upper_ch);
    upper_ch = ch;
    if (!found) continue;  // key was never raised to level i+1

    const ChunkRef locked = find_and_lock_enclosing(team, upper_ch, mk);
    const LaneVec<KV> ukv = read_chunk(team, locked);
    const std::uint32_t bal = team.ballot_fn(
        [&](int i) { return i < team.dsize() && kv_key(ukv[i]) == mk; });
    const int lane = Team::highest_lane(bal);
    if (lane >= 0) {
      // Locate mk's current enclosing chunk in level i, reachable from the
      // chunk it was moved into, and swing the upper entry to it.
      const auto [still_there, lower] = find_lateral(team, mk, moved.moved_to);
      if (still_there) {
        // The swing is a single atomic write, so recovery has nothing to
        // repair — the intent exists so a crash mid-hold releases the lock.
        publish_intent(team, IntentKind::kDownSwing, mk, locked);
        atomic_entry_write(team, locked, lane,
                           make_kv(mk, static_cast<Value>(lower)));
        clear_intent(team);
      }
    }
    unlock(team, locked);
    upper_ch = locked;
  }
}

}  // namespace gfsl::core
