// Batch execution engine (DESIGN.md §10): cursor-carrying operation variants
// plus the per-shard driver.  A team executing a key-sorted shard descends
// from its previous search's path instead of from the head (amortized
// descent), and pins its epoch once per shard instead of once per op.
//
// batch_search is search_slow (Algorithm 4.6) with a warm start.  The reuse
// argument: a chunk's key coverage only ever extends leftward (merges grow a
// successor's range toward smaller keys; removing a chunk's max shrinks it
// from the right) and keys only migrate rightward (insert shifts, splits,
// merges), so a chunk that once enclosed key k' stays at-or-left of the
// chunk enclosing any k >= k' for as long as it lives.  A cached max can
// therefore only be an over-estimate, which the ordinary lateral walk
// corrects — never a wrong skip.  Recycling voids the argument, so every
// cursor entry carries its acquisition-time generation stamp and the cursor
// never outlives the epoch pin it was built under (execute_shard invalidates
// it at every pin refresh; any stale read goes cold).
#include "core/batch.h"

#include <stdexcept>

#include "core/gfsl.h"
#include "sched/batch_dispatch.h"

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

Gfsl::SlowSearchResult Gfsl::batch_search(Team& team, Key k,
                                          BatchCursor& cur) {
  // The cursor contract is ascending keys; an out-of-order key would start
  // at a chunk possibly *right* of its enclosing chunk, so go cold instead.
  if (cur.warm() && k < cur.last_key) cur.invalidate();

  std::uint64_t reads = 0;
  bool use_cursor = cur.warm();
  bool counted = false;
  for (;;) {
    SlowSearchResult r;
    for (int l = 0; l < simt::kWarpSize; ++l) {
      r.path[l] = (l < max_levels())
                      ? head_[static_cast<std::size_t>(l)].load(
                            std::memory_order_acquire)
                      : NULL_CHUNK;
    }
    team.step();  // the headPtrAtHeight lockstep read

    // Warm start: the lowest cached level whose max still covers k.  Levels
    // above it keep their cursor chunks as path entries — each was on a
    // previous descent's path for a key <= k, which is exactly the "k is
    // laterally reachable from here" invariant the commit halves need.
    int start_level = -1;
    if (use_cursor) {
      for (int l = 0; l <= cur.height; ++l) {
        const BatchCursor::Entry& e = cur.levels[static_cast<std::size_t>(l)];
        if (e.ref != NULL_CHUNK && k <= e.max) {
          start_level = l;
          break;
        }
      }
    }

    LaneVec<KV> prev_kv;
    Guarded prev_g;
    bool have_prev = false;
    int height;
    int descent_top;
    Guarded cur_g;
    if (start_level >= 0) {
      for (int l = start_level + 1; l <= cur.height; ++l) {
        const ChunkRef c = cur.levels[static_cast<std::size_t>(l)].ref;
        if (c != NULL_CHUNK) r.path[l] = c;
      }
      height = start_level;
      descent_top = cur.height;
      const BatchCursor::Entry& e =
          cur.levels[static_cast<std::size_t>(start_level)];
      cur_g = Guarded{e.ref, e.gen};
      if (!counted) {
        counted = true;
        ++cur.reuses;
        team.metric(obs::kBatchDescentReuses);
      }
    } else if (foresight_start(team, k, &cur_g)) {
      // Cold descent seeded by a validated foresight hint: enter the bottom
      // walk directly.  Only the level-0 cursor entry gets warmed (height 0),
      // so the next ascending key either reuses it or consults a hint again.
      height = 0;
      descent_top = 0;
      if (!counted) {
        counted = true;
        ++cur.fulls;
        team.metric(obs::kBatchFullDescents);
      }
    } else {
      height = height_coop(team);
      descent_top = height;
      cur_g = guard_ref(head_of(team, height));
      if (!counted) {
        counted = true;
        ++cur.fulls;
        team.metric(obs::kBatchFullDescents);
      }
    }

    bool restart = false;
    while (height > 0) {
      bool stale = false;
      LaneVec<KV> kv = read_chunk_checked(team, cur_g, &stale);
      ++reads;
      if (stale) {  // chunk recycled under us — the path is garbage
        restart = true;
        break;
      }
      if (is_zombie(team, kv)) {
        note_zombie(team, cur_g.ref);
        const bool at_head =
            !have_prev && head_[static_cast<std::size_t>(height)].load(
                              std::memory_order_acquire) == cur_g.ref;
        std::vector<ChunkRef> chain;
        if (at_head) chain.push_back(cur_g.ref);
        bool chain_stale = false;
        const ChunkRef fnz = first_non_zombie(
            team, kv, at_head ? &chain : nullptr, &chain_stale);
        if (chain_stale) {
          restart = true;
          break;
        }
        if (have_prev) {
          redirect_to_remove_zombie(team, prev_g.ref, fnz);
        } else if (at_head) {
          ChunkRef expected = cur_g.ref;
          mem_->atomic_rmw(head_device_base_ + 256 +
                           static_cast<std::uint64_t>(height) * 4u);
          if (head_[static_cast<std::size_t>(height)].compare_exchange_strong(
                  expected, fnz, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            for (const ChunkRef z : chain) retire_chunk(team, z);
          }
          team.step();
        }
        cur_g = guard_ref(fnz);
        continue;
      }
      const int step = tid_for_next_step(team, k, kv);
      if (step == team.next_lane()) {  // lateral
        prev_kv = kv;
        prev_g = cur_g;
        have_prev = true;
        cur_g = guard_ref(next_of(team, kv));
      } else if (step != kNone) {  // down
        r.path[height] = cur_g.ref;
        cur.levels[static_cast<std::size_t>(height)] = {cur_g.ref, cur_g.gen,
                                                        max_of(team, kv)};
        --height;
        have_prev = false;
        cur_g = guard_ref(ptr_from_tid(team, step, kv));
      } else {  // backtrack
        if (!have_prev) {
          // All keys here are > k and there is no predecessor to step down
          // through — under a warm start this means the cursor chunk's
          // contents migrated past k.  Go cold.
          ++team.counters().restarts;
          team.record(simt::TraceEvent::kRestart, cur_g.ref, k);
          restart = true;
          break;
        }
        r.path[height] = prev_g.ref;
        cur.levels[static_cast<std::size_t>(height)] = {
            prev_g.ref, prev_g.gen, max_of(team, prev_kv)};
        const std::uint32_t bal = team.ballot_fn([&](int i) {
          return i < team.dsize() && kv_key(prev_kv[i]) <= k;
        });
        --height;
        cur_g = guard_ref(ptr_from_tid(team, Team::highest_lane(bal), prev_kv));
        have_prev = false;
      }
    }
    if (restart) {
      use_cursor = false;
      cur.invalidate();
      continue;
    }

    // Bottom level: lateral walk with zombie unlinking; the enclosing chunk
    // becomes path[0] and the cursor's level-0 entry.
    ChunkRef bprev = NULL_CHUNK;
    for (;;) {
      bool stale = false;
      const LaneVec<KV> kv = read_chunk_checked(team, cur_g, &stale);
      ++reads;
      if (stale) {
        restart = true;
        break;
      }
      if (is_zombie(team, kv)) {
        note_zombie(team, cur_g.ref);
        const bool at_head =
            epochs_ != nullptr && bprev == NULL_CHUNK &&
            head_[0].load(std::memory_order_acquire) == cur_g.ref;
        std::vector<ChunkRef> chain;
        if (at_head) chain.push_back(cur_g.ref);
        bool chain_stale = false;
        const ChunkRef fnz = first_non_zombie(
            team, kv, at_head ? &chain : nullptr, &chain_stale);
        if (chain_stale) {
          restart = true;
          break;
        }
        if (bprev != NULL_CHUNK) {
          redirect_to_remove_zombie(team, bprev, fnz);
        } else if (at_head) {
          ChunkRef expected = cur_g.ref;
          mem_->atomic_rmw(head_device_base_ + 256);
          if (head_[0].compare_exchange_strong(expected, fnz,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
            for (const ChunkRef z : chain) retire_chunk(team, z);
          }
          team.step();
        }
        cur_g = guard_ref(fnz);
        continue;
      }
      const int found = tid_with_equal_key(team, k, kv);
      if (found == team.next_lane()) {
        bprev = cur_g.ref;
        cur_g = guard_ref(next_of(team, kv));
        continue;
      }
      r.path[0] = cur_g.ref;
      cur.levels[0] = {cur_g.ref, cur_g.gen, max_of(team, kv)};
      r.found = (found != kNone);
      break;
    }
    if (restart) {
      use_cursor = false;
      cur.invalidate();
      continue;
    }
    cur.height = descent_top;
    cur.last_key = k;
    traversal_chunk_reads_.fetch_add(reads, std::memory_order_relaxed);
    traversals_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
}

bool Gfsl::contains_batch(Team& team, Key k, BatchCursor& cur) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  simt::OpScope scope(team, obs::kContainsOp, k);
  EpochScope epoch(*this, team);
  const SlowSearchResult sr = batch_search(team, k, cur);
  epoch.exit();
  scope.set_result(sr.found);
  return sr.found;
}

bool Gfsl::insert_batch(Team& team, Key k, Value v, BatchCursor& cur) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  simt::OpScope scope(team, obs::kInsertOp, k);
  // The commit half walks the recorded path with unchecked reads, which is
  // only sound while nothing recorded into the cursor can be recycled.  An
  // enclosing pin (execute_shard) guarantees that; without one, each op's
  // own pin is the protection boundary, so warm reuse must be forfeited.
  if (epochs_ != nullptr && !epochs_->pinned(team.id())) cur.invalidate();
  EpochScope epoch(*this, team);
  bool ok;
  {
    SlowSearchResult sr = batch_search(team, k, cur);
    if (sr.found) {
      ok = false;
    } else {
      ok = insert_committed(team, k, v, sr);
    }
  }
  epoch.exit();
  scope.set_result(ok);
  return ok;
}

bool Gfsl::erase_batch(Team& team, Key k, BatchCursor& cur) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  simt::OpScope scope(team, obs::kEraseOp, k);
  if (epochs_ != nullptr && !epochs_->pinned(team.id())) cur.invalidate();
  EpochScope epoch(*this, team);
  bool ok;
  {
    SlowSearchResult sr = batch_search(team, k, cur);
    if (!sr.found) {
      ok = false;
    } else {
      ok = erase_committed(team, k, sr);
    }
  }
  epoch.exit();
  scope.set_result(ok);
  return ok;
}

ShardExecStats Gfsl::execute_shard(Team& team, const Op* ops,
                                   const std::uint32_t* order,
                                   std::uint32_t begin, std::uint32_t end,
                                   std::uint8_t* outcomes,
                                   BatchOpObserver* observer, Rev batch_rev) {
  ShardExecStats ex;
  BatchCursor cur;
  // Install the whole-batch revision for this team's ops: the per-op
  // CommitScopes see a non-zero context and stamp `batch_rev` instead of
  // allocating their own.  The caller keeps the batch's commit slot
  // registered across every shard, so no snapshot can land between two
  // shards of one batch.  Restored even on a kill (the repair stamps under
  // its own scope).
  struct BatchRevGuard {
    Gfsl& g;
    int slot;
    bool set = false;
    ~BatchRevGuard() {
      if (set) g.commit_ctx_[static_cast<std::size_t>(slot)] = {};
    }
  } rev_guard{*this, 0};
  if (snaps_ != nullptr && batch_rev != 0) {
    rev_guard.slot = SnapshotManager::commit_slot(team.id());
    CommitCtx& ctx = commit_ctx_[static_cast<std::size_t>(rev_guard.slot)];
    if (ctx.rev == 0) {
      ctx = {batch_rev, false};
      rev_guard.set = true;
    }
  }
  // Pin once per shard, not once per op (the batch engine's reclamation
  // contract).  The per-op EpochScopes inside the *_batch calls see the slot
  // already pinned and become no-ops.
  const bool own_pin = epochs_ != nullptr && !epochs_->pinned(team.id());
  if (own_pin) {
    epochs_->pin(team.id());
    ++ex.pins;
    team.metric(obs::kBatchEpochPins);
  }
  std::uint32_t since_refresh = 0;
  try {
    for (std::uint32_t i = begin; i < end; ++i) {
      if (own_pin && since_refresh++ >= kBatchPinRefresh) {
        // Refresh the pin so a long shard cannot hold the global epoch
        // back.  The cursor must not outlive the pin interval it was built
        // under, so it goes cold with it.
        since_refresh = 0;
        epoch_exit(team);
        cur.invalidate();
        epochs_->pin(team.id());
        ++ex.pins;
        team.metric(obs::kBatchEpochPins);
      }
      const std::uint32_t idx = order[i];
      const Op& op = ops[idx];
      if (observer != nullptr) observer->on_begin(idx, op);
      bool executed = true;
      bool r = false;
      try {
        switch (op.kind) {
          case OpKind::Insert:
            r = insert_batch(team, op.key, op.value, cur);
            break;
          case OpKind::Delete:
            r = erase_batch(team, op.key, cur);
            break;
          case OpKind::Contains:
            r = contains_batch(team, op.key, cur);
            break;
        }
      } catch (const std::bad_alloc&) {
        // Pool exhausted even after emergency reclaims.  The structure is
        // untouched by the failed op; mark it skipped and keep draining —
        // later erases may free the memory a retry would need.
        executed = false;
        ex.out_of_memory = true;
      }
      if (executed) {
        outcomes[idx] = static_cast<std::uint8_t>(r ? BatchOpStatus::kTrue
                                                    : BatchOpStatus::kFalse);
        if (r) ++ex.applied_true;
        if (observer != nullptr) observer->on_end(idx, op, r);
      } else {
        outcomes[idx] = static_cast<std::uint8_t>(BatchOpStatus::kSkipped);
        if (observer != nullptr) observer->on_skipped(idx, op);
      }
    }
  } catch (...) {
    // TeamKilled (or any other non-op failure): silent unpin, as in
    // EpochScope's destructor — a yield here could swallow the kill.
    if (own_pin && epochs_->pinned(team.id())) epochs_->unpin(team.id());
    throw;
  }
  if (own_pin) epoch_exit(team);
  ex.reuses = cur.reuses;
  ex.fulls = cur.fulls;
  team.metric(obs::kBatchShardsExecuted);
  if (team.metrics() != nullptr) {
    team.metrics()->record(obs::kBatchShardOps, end - begin);
  }
  return ex;
}

BatchResult run_batch(Gfsl& sl, Team& team, const BatchRequest& ops,
                      std::size_t target_shard_ops) {
  BatchResult res;
  res.stats.ops = ops.size();
  res.outcomes.assign(ops.size(),
                      static_cast<std::uint8_t>(BatchOpStatus::kSkipped));
  if (ops.empty()) return res;

  const sched::ShardPlan plan = sched::plan_shards(ops, 1, target_shard_ops);
  res.stats.shards = plan.shards.size();
  res.stats.shard_sizes.reserve(plan.shards.size());

  // One revision for the whole batch (none-or-all snapshot visibility): the
  // batch commit slot stays registered until every shard has drained, so
  // stable_rev — and therefore every snapshot taken meanwhile — stays below
  // it.  Slot exhaustion degrades to per-op revisions (still consistent,
  // just not atomic as a batch).
  SnapshotManager* snaps = sl.snapshots();
  int batch_slot = -1;
  Rev batch_rev = 0;
  if (snaps != nullptr) {
    batch_slot = snaps->acquire_batch_slot();
    if (batch_slot >= 0) batch_rev = snaps->begin_commit(batch_slot);
  }
  struct BatchCommitGuard {
    SnapshotManager* snaps;
    int slot;
    ~BatchCommitGuard() {
      if (snaps != nullptr && slot >= 0) {
        snaps->end_commit(slot);
        snaps->release_batch_slot(slot);
      }
    }
  } commit_guard{snaps, batch_slot};

  for (const auto& s : plan.shards) {
    res.stats.shard_sizes.push_back(s.end - s.begin);
    const ShardExecStats ex =
        sl.execute_shard(team, ops.data(), plan.order.data(), s.begin, s.end,
                         res.outcomes.data(), nullptr, batch_rev);
    res.stats.descent_reuses += ex.reuses;
    res.stats.full_descents += ex.fulls;
    res.stats.epoch_pins += ex.pins;
    res.out_of_memory = res.out_of_memory || ex.out_of_memory;
  }
  return res;
}

}  // namespace gfsl::core
