// Team lock leases: the liveness registry behind crash-tolerant critical
// sections.
//
// GFSL's chunk locks are blocking: a team that dies while holding one would
// wedge every peer forever.  The lease protocol makes lock ownership
// *attributable and revocable*: every lock acquisition stamps the LOCK entry
// with the acquiring team's **lease word** — a packed (team id, epoch) pair —
// and a peer that spins on a held lock can probe the word against this table.
// A lease is *expired* when its team has been marked crashed (the scheduler
// does this at the kill step, so expiry is deterministic under seeded
// schedules) or when the team was revived since (its epoch is stale).  Only
// expired leases may be recovered/stolen; a live-but-slow holder keeps its
// lock — stealing from a live owner would corrupt the structure, so expiry is
// an explicit death certificate, never a timeout guess.
//
// Epochs exist because team ids are reused: after a crash is recovered, the
// harness revives the id with a bumped epoch, which retroactively expires
// every lock and intent the dead generation left behind.
//
// Lease word layout (32 bits, stored in the value half of a LOCK entry):
//   bits [0, 8)  — team id + 1 (0 means "no owner": legacy anonymous locks)
//   bits [8, 32) — epoch (24 bits)
//
// The table itself packs each team's slot as (epoch << 1) | crashed, so both
// the uncontended probe (`word()`, one relaxed load) and the expiry check
// (`expired()`, one acquire load) are single-word atomics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace gfsl::sched {

class LeaseTable {
 public:
  static constexpr int kMaxTeams = 255;  // id 0..254; word 0 is reserved

  /// Current lease word for `id`; 0 for out-of-range ids.
  std::uint32_t word(int id) const {
    if (id < 0 || id >= kMaxTeams) return 0;
    const std::uint32_t s =
        slots_[static_cast<std::size_t>(id)].load(std::memory_order_relaxed);
    return ((s >> 1) << 8) | static_cast<std::uint32_t>(id + 1);
  }

  /// Death certificate for the id's *current* epoch.  Idempotent.  Called by
  /// the scheduler at the kill step (deterministic) or by a harness that
  /// abandons a team.
  void mark_crashed(int id) {
    if (id < 0 || id >= kMaxTeams) return;
    slots_[static_cast<std::size_t>(id)].fetch_or(1u,
                                                  std::memory_order_acq_rel);
  }

  /// Death certificate for every id at once: the whole-process crash case.
  /// Gfsl::recover() calls this before replaying intents — no team of the
  /// dead process can still be running, so every persisted lease word
  /// becomes an expired one.
  void mark_all_crashed() {
    for (int id = 0; id < kMaxTeams; ++id) mark_crashed(id);
  }

  /// Revive an id for reuse: bump the epoch and clear the crashed bit.  Every
  /// lease word of the previous generation becomes expired.  Only call after
  /// the dead generation's locks/intents have been (or will be) recovered.
  void revive(int id) {
    if (id < 0 || id >= kMaxTeams) return;
    auto& s = slots_[static_cast<std::size_t>(id)];
    std::uint32_t cur = s.load(std::memory_order_acquire);
    while (!s.compare_exchange_weak(cur, ((cur >> 1) + 1) << 1,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    }
  }

  /// Canonical post-recovery state: every slot back to epoch 0, not crashed.
  /// Only legal when no lock or intent anywhere references a minted word —
  /// Gfsl::recover() guarantees that before calling.  Resetting (rather than
  /// leaving the recovery medic's bumped epoch behind) is what makes a
  /// recovered image a deterministic function of the crash state alone.
  void reset_all() {
    for (int id = 0; id < kMaxTeams; ++id) {
      slots_[static_cast<std::size_t>(id)].store(0, std::memory_order_relaxed);
    }
  }

  /// True when the generation that minted `lease_word` can no longer be
  /// running: its team crashed or was revived since.  Word 0 (no owner)
  /// never expires — anonymous locks keep the seed semantics.
  bool expired(std::uint32_t lease_word) const {
    const int id = word_team(lease_word);
    if (id < 0 || id >= kMaxTeams) return false;
    const std::uint32_t s =
        slots_[static_cast<std::size_t>(id)].load(std::memory_order_acquire);
    const std::uint32_t lease_epoch = lease_word >> 8;
    return (s >> 1) != lease_epoch || (s & 1u) != 0;
  }

  bool crashed(int id) const {
    if (id < 0 || id >= kMaxTeams) return false;
    return (slots_[static_cast<std::size_t>(id)].load(
                std::memory_order_acquire) &
            1u) != 0;
  }

  /// Team id encoded in a lease word; -1 for word 0 (no owner).
  static int word_team(std::uint32_t lease_word) {
    return static_cast<int>(lease_word & 0xFFu) - 1;
  }

  /// Back the table with external storage — kMaxTeams packed slot words,
  /// typically the lease section of a device::PersistRegion, so lease state
  /// survives a process crash.  `adopt == false` (fresh region) zeroes the
  /// slots; `adopt == true` (restart) takes the stored words as-is so the
  /// dead process's epochs/crash bits are what recovery probes against.
  /// Must be called before any concurrent use.
  void attach(std::atomic<std::uint32_t>* external, bool adopt) {
    slots_ = external;
    if (!adopt) {
      for (int id = 0; id < kMaxTeams; ++id) {
        slots_[static_cast<std::size_t>(id)].store(0,
                                                   std::memory_order_relaxed);
      }
    }
  }

 private:
  std::array<std::atomic<std::uint32_t>, kMaxTeams> own_{};
  std::atomic<std::uint32_t>* slots_ = own_.data();
};

}  // namespace gfsl::sched
