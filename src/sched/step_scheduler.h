// Deterministic interleaving scheduler for concurrency testing.
//
// GFSL's correctness argument (§4.3) rests on delicate orderings: right-to-
// left shifts during insert, max-field monotonicity, zombie reachability.
// Exercising those orderings reliably needs control over *which team runs
// next*.  StepScheduler provides that: in Deterministic mode every simulated
// global-memory step is a yield point, and a seeded RNG picks the next team
// to advance.  Re-running with the same seed reproduces the exact
// interleaving; sweeping seeds explores distinct interleavings.
//
// In Free mode every call is a no-op and teams run at native speed on their
// own OS threads (the measurement configuration).
//
// Failure injection: kill_at(step) makes the scheduler throw TeamKilled out
// of the victim's next yield once the global step counter passes `step`.
// The test harness catches it and abandons the team mid-operation, modeling
// a stalled warp.  Kills may land *anywhere*, including inside insert /
// erase / split / merge critical sections: chunk locks carry lease words
// (sched/lease.h) and every destructive span publishes an intent descriptor,
// so survivors detect the expired lease, roll the half-done mutation forward
// or back, and release the dead team's locks.  When a LeaseTable is attached
// via attach_leases(), the scheduler marks the victim crashed at the kill
// step itself — before the throw, under the scheduler mutex — so lease
// expiry is part of the deterministic interleaving and reruns with the same
// seed reproduce the exact recovery race.
//
// Epoch reclamation (core/reclaim.cpp) adds one more yield class: every
// operation's epoch announcement on exit (Gfsl::epoch_exit) is a sync point,
// so deterministic schedules interleave — and kill_at can land — right at
// the retire/reclaim boundary as well.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "sched/lease.h"

namespace gfsl::sched {

struct TeamKilled {
  int team_id;
};

class StepScheduler {
 public:
  // Free          — every call is a no-op; native threading (measurement).
  // Deterministic — a seeded RNG picks the next participant at every step.
  // RoundRobin    — participants advance strictly in id order, one step
  //                 each: the SIMT-like lockstep alternation used to model
  //                 two teams sharing a warp (the thesis's future-work
  //                 extension, Chapter 7).  A participant blocked in a spin
  //                 loop still yields every iteration, so its warp-mates
  //                 keep advancing — exactly the property that makes the
  //                 sub-warp scheme deadlock-free here.
  enum class Mode { Free, Deterministic, RoundRobin };

  explicit StepScheduler(Mode mode = Mode::Free, std::uint64_t seed = 1,
                         int participants = 0);

  Mode mode() const { return mode_; }

  /// A participant thread announces it is ready to be scheduled.  Blocks
  /// until the scheduler grants it its first step.  No-op in Free mode.
  void enter(int id);

  /// Yield point: give other participants a chance to run.  Called at every
  /// simulated global memory access.  No-op in Free mode.
  void yield(int id);

  /// Participant finished all its work; releases its slot.  No-op in Free.
  void leave(int id);

  /// Schedule participant `id` to be killed at its first yield at/after
  /// global step `step`.  Deterministic mode only.  The kill may land inside
  /// a critical section; with a LeaseTable attached the victim's lease is
  /// marked crashed at the same step.
  void kill_at(int id, std::uint64_t step);

  /// Arm a kill for every participant at/after `step` — the crash-sweep
  /// watchdog: survivors that are still running by then are livelocked, and
  /// the TeamKilled they catch marks the run as a hang.
  void kill_all_at(std::uint64_t step);

  /// Attach the lease table to mark victims crashed at their kill step
  /// (deterministically, under the scheduler mutex).  May be null.
  void attach_leases(LeaseTable* leases) { leases_ = leases; }

  std::uint64_t global_steps() const { return steps_; }

  /// The step kill_all_at() armed (UINT64_MAX when no watchdog is set) and
  /// whether any kill actually landed at/after it.  The crash harness
  /// surfaces both in postmortem bundles so a hang report carries the
  /// watchdog context that condemned the run.
  std::uint64_t watchdog_step() const { return watchdog_step_; }
  bool watchdog_fired() const { return watchdog_fired_; }

 private:
  void grant_next_locked();

  Mode mode_;
  LeaseTable* leases_ = nullptr;
  Xoshiro256ss rng_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> active_;   // participant is between enter() and leave()
  std::vector<bool> waiting_;  // participant is blocked in enter()/yield()
  std::vector<std::uint64_t> kill_step_;  // UINT64_MAX = never
  int granted_ = -1;           // participant currently allowed to run
  int n_ = 0;
  int entered_ = 0;            // participants that have called enter()
  std::uint64_t steps_ = 0;
  std::uint64_t watchdog_step_ = UINT64_MAX;  // set by kill_all_at
  bool watchdog_fired_ = false;  // a kill landed at/after watchdog_step_
};

}  // namespace gfsl::sched
