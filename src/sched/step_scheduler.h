// Deterministic interleaving scheduler for concurrency testing.
//
// GFSL's correctness argument (§4.3) rests on delicate orderings: right-to-
// left shifts during insert, max-field monotonicity, zombie reachability.
// Exercising those orderings reliably needs control over *which team runs
// next*.  StepScheduler provides that: in Deterministic mode every simulated
// global-memory step is a yield point, and a seeded RNG picks the next team
// to advance.  Re-running with the same seed reproduces the exact
// interleaving; sweeping seeds explores distinct interleavings.
//
// In Free mode every call is a no-op and teams run at native speed on their
// own OS threads (the measurement configuration).
//
// Failure injection: kill_at(step) makes the scheduler throw TeamKilled out
// of the victim's next yield once the global step counter passes `step`.
// The test harness catches it and abandons the team mid-operation, modeling
// a stalled warp.  (Killing a lock *holder* blocks peers by design — the
// algorithm is blocking for updates, lock-free only for Contains — so tests
// inject failures into readers or at points outside critical sections.)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/random.h"

namespace gfsl::sched {

struct TeamKilled {
  int team_id;
};

class StepScheduler {
 public:
  // Free          — every call is a no-op; native threading (measurement).
  // Deterministic — a seeded RNG picks the next participant at every step.
  // RoundRobin    — participants advance strictly in id order, one step
  //                 each: the SIMT-like lockstep alternation used to model
  //                 two teams sharing a warp (the thesis's future-work
  //                 extension, Chapter 7).  A participant blocked in a spin
  //                 loop still yields every iteration, so its warp-mates
  //                 keep advancing — exactly the property that makes the
  //                 sub-warp scheme deadlock-free here.
  enum class Mode { Free, Deterministic, RoundRobin };

  explicit StepScheduler(Mode mode = Mode::Free, std::uint64_t seed = 1,
                         int participants = 0);

  Mode mode() const { return mode_; }

  /// A participant thread announces it is ready to be scheduled.  Blocks
  /// until the scheduler grants it its first step.  No-op in Free mode.
  void enter(int id);

  /// Yield point: give other participants a chance to run.  Called at every
  /// simulated global memory access.  No-op in Free mode.
  void yield(int id);

  /// Participant finished all its work; releases its slot.  No-op in Free.
  void leave(int id);

  /// Schedule participant `id` to be killed at its first yield at/after
  /// global step `step`.  Deterministic mode only.
  void kill_at(int id, std::uint64_t step);

  std::uint64_t global_steps() const { return steps_; }

 private:
  void grant_next_locked();

  Mode mode_;
  Xoshiro256ss rng_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> active_;   // participant is between enter() and leave()
  std::vector<bool> waiting_;  // participant is blocked in enter()/yield()
  std::vector<std::uint64_t> kill_step_;  // UINT64_MAX = never
  int granted_ = -1;           // participant currently allowed to run
  int n_ = 0;
  int entered_ = 0;            // participants that have called enter()
  std::uint64_t steps_ = 0;
};

}  // namespace gfsl::sched
