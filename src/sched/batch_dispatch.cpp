#include "sched/batch_dispatch.h"

#include <algorithm>
#include <numeric>

namespace gfsl::sched {

ShardPlan plan_shards(const Op* ops, std::size_t n, int num_teams,
                      std::size_t target_shard_ops) {
  if (num_teams < 1) num_teams = 1;
  ShardPlan plan;
  plan.team_ranges.assign(static_cast<std::size_t>(num_teams), {0, 0});
  if (n == 0) return plan;

  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), 0u);
  // (key, submission index) is a strict total order, so plain sort is stable
  // in effect and the plan is deterministic across platforms.
  std::sort(plan.order.begin(), plan.order.end(),
            [ops](std::uint32_t a, std::uint32_t b) {
              if (ops[a].key != ops[b].key) return ops[a].key < ops[b].key;
              return a < b;
            });

  if (target_shard_ops == 0) {
    target_shard_ops = std::max<std::size_t>(
        16, n / (8 * static_cast<std::size_t>(num_teams)));
  }

  std::uint32_t begin = 0;
  while (begin < n) {
    std::uint32_t end = static_cast<std::uint32_t>(
        std::min<std::size_t>(n, begin + target_shard_ops));
    // Never split a run of equal keys: per-key submission order is the
    // batch's semantic contract and it only holds inside one shard.
    while (end < n &&
           ops[plan.order[end]].key == ops[plan.order[end - 1]].key) {
      ++end;
    }
    plan.shards.push_back({begin, end});
    begin = end;
  }

  // Contiguous shard ranges per team: neighbouring shards share key
  // locality, so a team's own queue preserves the warm-cursor effect.
  const std::size_t ns = plan.shards.size();
  for (int t = 0; t < num_teams; ++t) {
    const std::size_t lo = ns * static_cast<std::size_t>(t) /
                           static_cast<std::size_t>(num_teams);
    const std::size_t hi = ns * static_cast<std::size_t>(t + 1) /
                           static_cast<std::size_t>(num_teams);
    plan.team_ranges[static_cast<std::size_t>(t)] = {
        static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  }
  return plan;
}

}  // namespace gfsl::sched
