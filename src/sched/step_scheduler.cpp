#include "sched/step_scheduler.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gfsl::sched {

StepScheduler::StepScheduler(Mode mode, std::uint64_t seed, int participants)
    : mode_(mode), rng_(seed), n_(participants) {
  if (mode_ != Mode::Free && participants <= 0) {
    throw std::invalid_argument(
        "scheduled modes need a positive participant count");
  }
  active_.assign(static_cast<std::size_t>(n_), false);
  waiting_.assign(static_cast<std::size_t>(n_), false);
  kill_step_.assign(static_cast<std::size_t>(n_),
                    std::numeric_limits<std::uint64_t>::max());
}

void StepScheduler::enter(int id) {
  if (mode_ == Mode::Free) return;
  if (id < 0 || id >= n_) return;  // non-participants (medic teams) run free
  std::unique_lock<std::mutex> lk(mu_);
  active_[static_cast<std::size_t>(id)] = true;
  waiting_[static_cast<std::size_t>(id)] = true;
  ++entered_;
  // Start barrier: no one runs until every participant is present, so the
  // interleaving is a pure function of the seed (not of thread start-up
  // order on the host).
  if (entered_ == n_ && granted_ < 0) {
    grant_next_locked();
    cv_.notify_all();
  }
  cv_.wait(lk, [&] { return granted_ == id; });
  waiting_[static_cast<std::size_t>(id)] = false;
}

void StepScheduler::yield(int id) {
  if (mode_ == Mode::Free) return;
  if (id < 0 || id >= n_) return;  // non-participants (medic teams) run free
  std::unique_lock<std::mutex> lk(mu_);
  if (!active_[static_cast<std::size_t>(id)]) {
    // A participant that left (or was killed) runs free, unscheduled; this
    // lets quiescent follow-up work reuse a structure bound to the scheduler.
    return;
  }
  ++steps_;
  if (steps_ >= kill_step_[static_cast<std::size_t>(id)]) {
    // Deactivate and hand the baton on before unwinding.  The lease is
    // marked crashed here, under mu_, so peers observe the death at a
    // deterministic point of the interleaving.
    kill_step_[static_cast<std::size_t>(id)] =
        std::numeric_limits<std::uint64_t>::max();
    active_[static_cast<std::size_t>(id)] = false;
    if (steps_ >= watchdog_step_) watchdog_fired_ = true;
    if (leases_ != nullptr) leases_->mark_crashed(id);
    grant_next_locked();
    cv_.notify_all();
    throw TeamKilled{id};
  }
  waiting_[static_cast<std::size_t>(id)] = true;
  grant_next_locked();
  cv_.notify_all();
  cv_.wait(lk, [&] { return granted_ == id; });
  waiting_[static_cast<std::size_t>(id)] = false;
}

void StepScheduler::leave(int id) {
  if (mode_ == Mode::Free) return;
  if (id < 0 || id >= n_) return;
  std::unique_lock<std::mutex> lk(mu_);
  active_[static_cast<std::size_t>(id)] = false;
  grant_next_locked();
  cv_.notify_all();
}

void StepScheduler::kill_at(int id, std::uint64_t step) {
  if (id < 0 || id >= n_) return;
  std::lock_guard<std::mutex> lk(mu_);
  kill_step_[static_cast<std::size_t>(id)] = step;
}

void StepScheduler::kill_all_at(std::uint64_t step) {
  std::lock_guard<std::mutex> lk(mu_);
  watchdog_step_ = std::min(watchdog_step_, step);
  for (auto& s : kill_step_) s = std::min(s, step);
}

void StepScheduler::grant_next_locked() {
  int candidates = 0;
  for (int i = 0; i < n_; ++i) {
    if (active_[static_cast<std::size_t>(i)] &&
        waiting_[static_cast<std::size_t>(i)]) {
      ++candidates;
    }
  }
  if (candidates == 0) {
    granted_ = -1;
    return;
  }
  if (mode_ == Mode::RoundRobin) {
    // Next waiting participant after the last granted one, in id order.
    for (int off = 1; off <= n_; ++off) {
      const int i = (granted_ < 0 ? off - 1 : (granted_ + off) % n_);
      if (active_[static_cast<std::size_t>(i)] &&
          waiting_[static_cast<std::size_t>(i)]) {
        granted_ = i;
        return;
      }
    }
    granted_ = -1;
    return;
  }
  // Deterministic: pick uniformly among active waiting participants.
  auto pick = static_cast<int>(rng_.below(static_cast<std::uint64_t>(candidates)));
  for (int i = 0; i < n_; ++i) {
    if (active_[static_cast<std::size_t>(i)] &&
        waiting_[static_cast<std::size_t>(i)]) {
      if (pick == 0) {
        granted_ = i;
        return;
      }
      --pick;
    }
  }
}

}  // namespace gfsl::sched
