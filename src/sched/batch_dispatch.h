// Batch dispatch: the host-side half of the kernel-style batch engine
// (DESIGN.md §10).  A batch of mixed operations is key-sorted, cut into
// contiguous key-range shards, and the shards are handed to teams through a
// work queue with stealing — the in-kernel equivalent of a persistent-threads
// grid pulling tiles until the launch drains.
//
// Layering: gfsl_sched depends only on gfsl_common, so this header knows
// nothing about the skiplist.  It deals purely in `Op` arrays and index
// permutations; the structure-side consumer is core/batch.{h,cpp}.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"

namespace gfsl::sched {

/// The sorted, sharded form of one batch.  `order` is a permutation of
/// [0, n): executing ops in `order` sequence visits keys in ascending order,
/// with equal keys kept in submission order (stable sort by (key, index)).
/// That stability is what makes batch outcomes deterministic: a shard never
/// splits a run of equal keys, so all ops on one key execute sequentially in
/// submission order inside a single shard, and ops on distinct keys commute.
struct ShardPlan {
  struct Shard {
    std::uint32_t begin = 0;  // half-open range into `order`
    std::uint32_t end = 0;
  };

  std::vector<std::uint32_t> order;
  std::vector<Shard> shards;
  /// Team t initially owns shards [team_ranges[t].first, .second); stealing
  /// walks the other teams' ranges once its own is drained.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> team_ranges;

  int num_teams() const { return static_cast<int>(team_ranges.size()); }
};

/// Sort + shard one batch.  `target_shard_ops` is the shard granularity; 0
/// picks max(16, n / (8 * num_teams)) so each team sees ~8 shards — enough
/// slack for stealing to balance skewed key ranges without shredding the
/// cursor locality that makes shards worth having.  Equal-key runs are never
/// split across shards.  Deterministic: same ops + teams + target ⇒ same plan.
ShardPlan plan_shards(const Op* ops, std::size_t n, int num_teams,
                      std::size_t target_shard_ops = 0);

inline ShardPlan plan_shards(const std::vector<Op>& ops, int num_teams,
                             std::size_t target_shard_ops = 0) {
  return plan_shards(ops.data(), ops.size(), num_teams, target_shard_ops);
}

/// Multi-consumer shard queue over a ShardPlan: each team pops from its own
/// range first and steals round-robin from the others once it drains.  Pops
/// are a single fetch_add per attempt, so under a StepScheduler grant the
/// pop order — and therefore the steal count — is replay-deterministic.
class ShardQueue {
 public:
  explicit ShardQueue(const ShardPlan& plan) : plan_(plan) {
    const std::size_t nt = plan.team_ranges.size();
    cursors_ = std::make_unique<std::atomic<std::uint32_t>[]>(nt);
    for (std::size_t t = 0; t < nt; ++t) {
      cursors_[t].store(plan.team_ranges[t].first, std::memory_order_relaxed);
    }
  }

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Pop the next shard index for `team` (its own range, then steals).
  /// Returns -1 when every range is drained.  `*stolen` reports whether the
  /// shard came from another team's range.
  int pop(int team, bool* stolen = nullptr) {
    const int nt = plan_.num_teams();
    for (int d = 0; d < nt; ++d) {
      const int victim = (team + d) % nt;
      auto& cur = cursors_[static_cast<std::size_t>(victim)];
      const std::uint32_t end =
          plan_.team_ranges[static_cast<std::size_t>(victim)].second;
      if (cur.load(std::memory_order_relaxed) >= end) continue;
      const std::uint32_t got = cur.fetch_add(1, std::memory_order_relaxed);
      if (got >= end) continue;  // lost the race for the victim's last shard
      if (stolen != nullptr) *stolen = (d != 0);
      if (d != 0) steals_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<int>(got);
    }
    if (stolen != nullptr) *stolen = false;
    return -1;
  }

  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  const ShardPlan& plan_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> cursors_;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace gfsl::sched
