#include "model/occupancy.h"

#include <algorithm>
#include <stdexcept>

namespace gfsl::model {

namespace {

// Registers actually consumed by one warp: per-warp allocation rounds up to
// the hardware granularity (256 registers on CC 5.2).
int warp_register_cost(const GpuParams& gpu, int regs_per_thread) {
  const int raw = regs_per_thread * gpu.warp_size;
  const int g = gpu.register_alloc_granularity;
  return ((raw + g - 1) / g) * g;
}

}  // namespace

OccupancyResult Occupancy::compute(const KernelResources& kernel,
                                   int warps_per_block) const {
  if (warps_per_block <= 0 ||
      warps_per_block * gpu_.warp_size > gpu_.max_threads_per_sm) {
    throw std::invalid_argument("invalid warps_per_block");
  }

  // --- Register cap policy: keep target_blocks resident. ------------------
  const int threads_per_block = warps_per_block * gpu_.warp_size;
  int budget = gpu_.registers_per_sm / (threads_per_block * target_blocks_);
  budget = (budget / gpu_.register_round) * gpu_.register_round;  // round down
  budget = std::min(budget, gpu_.max_registers_per_thread);
  const int regs =
      std::min(kernel.register_demand, std::max(budget, gpu_.register_round));

  // --- Active blocks from hardware limits. --------------------------------
  const int block_reg_cost = warp_register_cost(gpu_, regs) * warps_per_block;
  int blocks_by_regs = gpu_.registers_per_sm / block_reg_cost;
  int blocks_by_warps = gpu_.max_warps_per_sm / warps_per_block;
  int blocks_by_threads = gpu_.max_threads_per_sm / threads_per_block;
  int blocks = std::min({blocks_by_regs, blocks_by_warps, blocks_by_threads,
                         gpu_.max_blocks_per_sm});
  blocks = std::max(blocks, 1);

  OccupancyResult r;
  r.warps_per_block = warps_per_block;
  r.registers_per_thread = regs;
  r.active_blocks = blocks;
  r.active_warps = blocks * warps_per_block;
  r.theoretical_occupancy =
      static_cast<double>(r.active_warps) / gpu_.max_warps_per_sm;
  r.achieved_occupancy = r.theoretical_occupancy * kernel.stall_efficiency;

  // --- Spill traffic fraction. ---------------------------------------------
  // Register spill traffic grows superlinearly with the number of spilled
  // registers (each spilled value is re-loaded at every use); a quadratic
  // saturation term fits the thesis's measured fractions:
  //   GFSL: spilled {0,15,39,47} -> {0%,10%,43%,53%}   (base 45^2)
  // Local arrays add a constant spill floor (M&C: ~23% at every block size).
  const double spilled =
      static_cast<double>(std::max(0, kernel.register_demand - regs));
  const double local_q = static_cast<double>(kernel.local_array_bytes) *
                         7.5;  // calibrated: 80 B path array -> ~23% floor
  constexpr double kBase = 45.0 * 45.0;
  const double q = spilled * spilled + local_q;
  r.spill_fraction = q / (q + kBase);
  return r;
}

}  // namespace gfsl::model
