// Maxwell occupancy and register-spill calculator (Tables 5.1 / 5.2).
//
// The thesis studies the concurrency-vs-resources tradeoff by sweeping warps
// per block: more resident warps hide latency better, but shrink the register
// budget per thread until local variables spill to global memory (§2.2
// "Resource Management", §5.2 "Warps Per Block").
//
// The calculator reproduces the authors' compilation policy: given a kernel's
// *register demand* (what the compiler would use unconstrained), registers
// per thread are capped so at least `target_blocks` blocks stay resident,
// then active blocks, occupancy and the spill-traffic fraction follow from
// CC 5.2 hardware rules.  With demand = 79 (GFSL) and demand = 42 (M&C) this
// reproduces every row of Tables 5.1 and 5.2.
#pragma once

#include "model/gpu_params.h"

namespace gfsl::model {

struct KernelResources {
  int register_demand;      // registers/thread the kernel wants, uncapped
  // Bytes of thread-local arrays that live in "local" (spilled) memory
  // regardless of register pressure.  GFSL keeps its path in a shfl-accessed
  // "artificial array" so this is 0; M&C holds the traversal path in a real
  // local array (§5.2: "they use thread-local arrays to hold the traversal
  // path"), giving it a ~23% spill-traffic floor at every block size.
  int local_array_bytes;
  // Fraction of theoretical occupancy actually achieved; calibrated from the
  // thesis (GFSL ~0.977, M&C ~0.83 — M&C warps stall on memory dependencies
  // "between 86% and 91% of the latency").
  double stall_efficiency;
};

inline constexpr KernelResources kGfslKernel{79, 0, 0.977};
inline constexpr KernelResources kMcKernel{42, 80, 0.83};

struct OccupancyResult {
  int warps_per_block;
  int registers_per_thread;  // after the cap policy
  int active_blocks;
  int active_warps;             // per SM
  double theoretical_occupancy; // active_warps / max_warps_per_sm
  double achieved_occupancy;    // theoretical * stall_efficiency
  double spill_fraction;        // share of memory traffic that is spill
};

class Occupancy {
 public:
  explicit Occupancy(const GpuParams& gpu = gtx970(), int target_blocks = 2)
      : gpu_(gpu), target_blocks_(target_blocks) {}

  OccupancyResult compute(const KernelResources& kernel,
                          int warps_per_block) const;

 private:
  GpuParams gpu_;
  int target_blocks_;
};

}  // namespace gfsl::model
