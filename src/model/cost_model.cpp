#include "model/cost_model.h"

#include <algorithm>

#include "common/env.h"

namespace gfsl::model {

CostModel::CostModel(const GpuParams& gpu) : gpu_(gpu) {
  // Calibration overrides for sensitivity experiments.
  hiding_efficiency_ = env_double("GFSL_HIDING_EFF", hiding_efficiency_);
  dram_efficiency_ = env_double("GFSL_DRAM_EFF", dram_efficiency_);
}

double CostModel::transfer_seconds(std::uint64_t ops,
                                   std::uint32_t bytes_per_op_in,
                                   std::uint32_t bytes_per_op_out) const {
  const double bytes = static_cast<double>(ops) *
                       (static_cast<double>(bytes_per_op_in) +
                        static_cast<double>(bytes_per_op_out));
  return gpu_.kernel_launch_seconds +
         bytes / (gpu_.pcie_bandwidth_gbps * 1e9);
}

ModelResult CostModel::throughput(const KernelRun& run,
                                  const OccupancyResult& occ,
                                  int teams_per_warp) const {
  ModelResult r;
  if (run.ops == 0) return r;

  // --- Latency bound -------------------------------------------------------
  // Average memory-epoch latency from the measured L2 hit ratio.
  const auto& m = run.mem;
  const double tx = static_cast<double>(std::max<std::uint64_t>(m.transactions, 1));
  const double hit_ratio = static_cast<double>(m.l2_hits) / tx;
  r.avg_epoch_latency =
      hit_ratio * gpu_.l2_latency + (1.0 - hit_ratio) * gpu_.dram_latency;

  const double issue_cycles =
      static_cast<double>(run.warp_steps) * gpu_.issue_cost;
  const double epoch_cycles =
      static_cast<double>(run.mem_epochs) * r.avg_epoch_latency;
  // Every transaction beyond one per epoch is an uncoalesced replay.
  const double extra_tx = std::max(
      0.0, static_cast<double>(m.transactions) -
               static_cast<double>(run.mem_epochs));
  const double replay_cycles = extra_tx * gpu_.replay_cost;
  const double atomic_cycles =
      static_cast<double>(m.atomics) * gpu_.atomic_cost;
  // A failed lock CAS costs a full round trip before the retry.
  const double spin_cycles =
      static_cast<double>(run.lock_spins) * (gpu_.atomic_cost + r.avg_epoch_latency);

  const double warps_in_flight = occ.achieved_occupancy *
                                 static_cast<double>(gpu_.max_warps_per_sm) *
                                 static_cast<double>(gpu_.num_sms);
  const double mem_parallelism = std::max(
      1.0, warps_in_flight * hiding_efficiency_ * teams_per_warp);
  const double issue_parallelism =
      std::max(1.0, warps_in_flight * hiding_efficiency_);
  // Memory waits of co-resident teams in a warp overlap; instruction issue
  // does not (lockstep alternation serializes it within the warp).
  const double wait_cycles =
      epoch_cycles + replay_cycles + atomic_cycles + spin_cycles;
  r.latency_seconds = (wait_cycles / mem_parallelism +
                       issue_cycles / issue_parallelism) /
                      (gpu_.core_clock_ghz * 1e9);

  // --- Bandwidth bound ------------------------------------------------------
  // Only DRAM transactions consume interface bandwidth; spill traffic
  // (register spills / local arrays, §5.2) inflates it.
  const double spill_inflation =
      occ.spill_fraction < 1.0 ? 1.0 / (1.0 - occ.spill_fraction) : 1e9;
  r.dram_bytes = static_cast<double>(m.dram_transactions) *
                 static_cast<double>(gpu_.line_bytes) * spill_inflation;
  r.bandwidth_seconds =
      r.dram_bytes / (gpu_.dram_bandwidth_gbps * 1e9 * dram_efficiency_);

  r.wall_seconds = std::max(r.latency_seconds, r.bandwidth_seconds);
  r.bandwidth_bound = r.bandwidth_seconds > r.latency_seconds;
  r.mops = static_cast<double>(run.ops) / r.wall_seconds / 1e6;
  return r;
}

}  // namespace gfsl::model
