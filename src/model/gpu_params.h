// Architectural constants of the evaluation platform (§5.1).
//
// "Both GFSL and M&C were evaluated on a GM204 GeForce GTX 970 (Maxwell
//  architecture) GPU ... 13 active streaming multiprocessors and a total of
//  1,664 cores.  The device memory capacity is 4 GB GDDR5.  The L2 Cache size
//  is 1.75 MB.  The core and memory clocks are 1050MHz and 1750MHz."
//
// Everything here is either quoted from the thesis or a published GM204 /
// CUDA compute-capability-5.2 datasheet number.
#pragma once

#include <cstdint>

namespace gfsl::model {

struct GpuParams {
  // SM / scheduling
  int num_sms = 13;
  int max_warps_per_sm = 64;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int warp_size = 32;

  // Register file (CC 5.2)
  int registers_per_sm = 65536;
  int register_alloc_granularity = 256;  // registers, allocated per warp
  int register_round = 8;                // compiler rounds regs/thread to 8
  int max_registers_per_thread = 255;

  // Memory system
  std::uint64_t l2_bytes = 1792ull * 1024;  // 1.75 MB
  std::uint32_t line_bytes = 128;
  double dram_bandwidth_gbps = 224.0;  // GTX 970 aggregate (GB/s)

  // Clocks
  double core_clock_ghz = 1.050;

  // Host <-> device path (§2.1: "Communication between the host and the
  // device is achieved by transferring large datasets ... a slow process
  // that poses a significant bottleneck").
  double pcie_bandwidth_gbps = 12.0;  // PCIe 3.0 x16, effective
  double kernel_launch_seconds = 10e-6;

  // Latencies (cycles) — Maxwell microbenchmark consensus values.
  double dram_latency = 368.0;
  double l2_latency = 194.0;
  double issue_cost = 6.0;     // cycles per lockstep instruction issued
  double atomic_cost = 40.0;   // extra serialization per atomic
  // Issue-side cost per extra transaction of an uncoalesced access.  Replays
  // are throughput-limited, not latency-limited: the lanes' transactions
  // overlap in the memory system, so only the extra issue slots count here
  // (their DRAM-side cost shows up in the bandwidth bound).
  double replay_cost = 2.0;
};

inline const GpuParams& gtx970() {
  static const GpuParams p{};
  return p;
}

}  // namespace gfsl::model
