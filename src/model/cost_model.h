// Analytic GPU throughput model.
//
// The simulator *executes* the data-structure algorithms and measures the
// events that govern GPU performance — lockstep instructions, coalesced vs
// scattered memory transactions, L2 hits vs DRAM transactions, atomics, lock
// spins.  This model converts those measured events into modeled wall time on
// the evaluation GPU (GTX 970) using the standard two-bound throughput model:
//
//   latency bound:  each warp serially experiences its instruction issue and
//                   memory-epoch latencies; warps in flight (occupancy) hide
//                   each other's latency.
//   bandwidth bound: DRAM traffic (inflated by register/local-array spill,
//                   §5.2) cannot exceed the memory interface.
//
//   wall = max(latency_bound, bandwidth_bound);  MOPS = ops / wall.
//
// Two dimensionless efficiency factors (latency-hiding efficiency and DRAM
// efficiency) are calibrated once against the thesis's Table 5.1/5.2 anchor
// points; everything else — including every range-dependent effect in
// Figures 5.1–5.4 — comes from the measured event counts.
#pragma once

#include <cstdint>

#include "device/device_memory.h"
#include "model/gpu_params.h"
#include "model/occupancy.h"

namespace gfsl::model {

/// Events measured for one kernel launch (one benchmark run).
struct KernelRun {
  std::uint64_t ops = 0;          // data-structure operations completed
  std::uint64_t warp_steps = 0;   // lockstep instructions, summed over warps
  std::uint64_t mem_epochs = 0;   // serialized memory waits per warp, summed
                                  // (a coalesced chunk read = 1 epoch; a
                                  // divergent M&C hop phase = 1 epoch at the
                                  // pace of the slowest lane)
  std::uint64_t lock_spins = 0;   // failed lock acquisitions
  device::MemStats mem;
};

struct ModelResult {
  double mops = 0.0;              // modeled millions of ops per second
  double wall_seconds = 0.0;
  double latency_seconds = 0.0;   // latency-bound component
  double bandwidth_seconds = 0.0; // bandwidth-bound component
  bool bandwidth_bound = false;
  double avg_epoch_latency = 0.0; // cycles, from the measured L2 hit ratio
  double dram_bytes = 0.0;        // incl. spill inflation
};

class CostModel {
 public:
  explicit CostModel(const GpuParams& gpu = gtx970());

  /// `teams_per_warp`: 1 for the paper's configuration (one team per warp,
  /// §5.2).  2 models the sub-warp-teams extension (Chapter 7): two 16-lane
  /// teams share a warp, so their memory waits overlap (doubling effective
  /// memory-level parallelism) while their instruction issue still
  /// serializes within the warp.
  ModelResult throughput(const KernelRun& run, const OccupancyResult& occ,
                         int teams_per_warp = 1) const;

  /// Host-side overhead of one launch: shipping the operation array down
  /// and the result array back over PCIe, plus the launch itself (§2.1,
  /// §5.1's input format).  Reported separately — the paper's throughput
  /// numbers are kernel-side, but this is what caps tiny launches (e.g. the
  /// ops == range single-op runs at small ranges).
  double transfer_seconds(std::uint64_t ops, std::uint32_t bytes_per_op_in,
                          std::uint32_t bytes_per_op_out = 1) const;

  /// Calibration knobs (see header comment).
  void set_hiding_efficiency(double e) { hiding_efficiency_ = e; }
  void set_dram_efficiency(double e) { dram_efficiency_ = e; }
  double hiding_efficiency() const { return hiding_efficiency_; }
  double dram_efficiency() const { return dram_efficiency_; }

 private:
  GpuParams gpu_;
  // Calibrated once against the thesis's Table 5.1/5.2 anchors (GFSL 65.7
  // and M&C ~21 MOPS at 16 warps/block, [10,10,80], 1M range) and the
  // Table 5.1 peak-at-16-warps shape:
  //  * hiding_efficiency — fraction of resident warps that effectively hide
  //    latency (schedulers stall on dependencies well before 100%).
  //  * dram_efficiency — achieved fraction of peak DRAM bandwidth for the
  //    random-access, read-mostly traffic these structures generate; random
  //    row activations plus the op-array/result streams the simulator does
  //    not model leave only a small fraction of the 224 GB/s peak.
  double hiding_efficiency_ = 0.32;
  double dram_efficiency_ = 0.093;
};

}  // namespace gfsl::model
